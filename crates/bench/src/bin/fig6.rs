//! Fig. 6 — energy per flit for Elevator-First, CDA and AdEle, normalised
//! to Elevator-First, at low (1e-3) and high (near-saturation) injection
//! rates for each elevator placement.
//!
//! The paper's takeaways: at low rates AdEle is the *most* energy
//! efficient (minimal-path override); at high rates it pays a small
//! (<10 %) premium over CDA for taking non-minimal paths that relieve
//! congestion.
//!
//! The (regime × placement × policy) grid runs on the `noc_exp` parallel
//! pool; under `ADELE_QUICK=1` the binary re-runs the grid sequentially
//! and asserts the pooled results are bit-identical. `--stream v1|v2`
//! selects the workload stream (default the classic polled `v1`); the
//! dumps record the choice.
//!
//! **Link-granular mode** (`fig6 --links`, or `ADELE_FIG6_LINKS=1`):
//! instead of the aggregate cells, reproduce the figure at link
//! granularity from the per-link telemetry — per-pillar TSV energy, the
//! hottest links of every run, a per-link CSV and a layer/pillar heatmap
//! JSON per placement under `results/`.

use adele::offline::SubsetAssignment;
use adele_bench::{
    dump_json, f2, f4, fig6_rates, make_selector, offline_assignment, ok_or_die, phases,
    print_table, quick_mode, results_dir, sim_config, stream_flag, Policy, Workload,
};
use noc_energy::{HeatmapReport, LinkEnergyReport};
use noc_exp::runner::{default_threads, par_map};
use noc_sim::harness::run_once_input;
use noc_sim::{RunSummary, Simulator};
use noc_topology::placement::Placement;
use noc_traffic::StreamVersion;
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    placement: String,
    rate: f64,
    stream: String,
    policy: String,
    energy_per_flit_nj: f64,
    normalized: f64,
}

/// One grid point: a placement × policy cell at one regime's rate.
#[derive(Clone, Copy)]
struct Job {
    placement: Placement,
    policy: Policy,
    rate: f64,
}

fn run_job(job: &Job, assignments: &[SubsetAssignment], stream: StreamVersion) -> RunSummary {
    let (mesh, elevators) = job.placement.instantiate();
    let assignment = &assignments[placement_index(job.placement)];
    ok_or_die(
        run_once_input(
            &sim_config(job.placement, 51),
            Workload::Uniform.build_input(stream, &mesh, job.rate, 999),
            make_selector(job.policy, &mesh, &elevators, Some(assignment), 77),
        ),
        &format!("fig6 {} {} cell", job.placement.name(), job.policy.name()),
    )
}

fn placement_index(placement: Placement) -> usize {
    Placement::ALL
        .iter()
        .position(|&p| p == placement)
        .expect("placement is one of the presets")
}

fn standard_mode(stream: StreamVersion) {
    // The offline AMOSA stage caches to disk: run it sequentially, once
    // per placement, before fanning the grid out.
    let assignments: Vec<SubsetAssignment> = Placement::ALL
        .iter()
        .map(|&p| offline_assignment(p))
        .collect();

    let mut jobs = Vec::new();
    for regime in 0..2 {
        for placement in Placement::ALL {
            let rates = fig6_rates(placement);
            let rate = if regime == 0 { rates.0 } else { rates.1 };
            for policy in Policy::MAIN {
                jobs.push(Job {
                    placement,
                    policy,
                    rate,
                });
            }
        }
    }

    let summaries = par_map(&jobs, default_threads(), |_, job| {
        run_job(job, &assignments, stream)
    });
    if quick_mode() {
        // Smoke runs double as the pool's equivalence check.
        let sequential: Vec<RunSummary> = jobs
            .iter()
            .map(|job| run_job(job, &assignments, stream))
            .collect();
        assert_eq!(
            summaries, sequential,
            "pooled fig6 grid must match the sequential grid bit for bit"
        );
    }

    let mut cells = Vec::new();
    let mut cursor = 0;
    for (regime, label) in [(0usize, "a"), (1, "b")] {
        println!(
            "\n# Fig. 6({label}): energy/flit normalised to ElevFirst — {} injection rate",
            if regime == 0 { "Low" } else { "High" }
        );
        let mut rows = Vec::new();
        for placement in Placement::ALL {
            let batch = &summaries[cursor..cursor + Policy::MAIN.len()];
            let rate = jobs[cursor].rate;
            cursor += Policy::MAIN.len();
            let base = batch[0].energy_per_flit_nj.max(1e-12);
            let mut row = vec![placement.name().to_string(), f4(rate)];
            for (policy, summary) in Policy::MAIN.iter().zip(batch) {
                row.push(f2(summary.energy_per_flit_nj / base));
                cells.push(Cell {
                    placement: placement.name().to_string(),
                    rate,
                    stream: stream.to_string(),
                    policy: policy.name().to_string(),
                    energy_per_flit_nj: summary.energy_per_flit_nj,
                    normalized: summary.energy_per_flit_nj / base,
                });
            }
            rows.push(row);
        }
        print_table(&["placement", "rate", "ElevFirst", "CDA", "AdEle"], &rows);
    }
    println!(
        "\npaper: AdEle lowest at low rates (minimal-path override); ≤9.7% over CDA at high rates."
    );
    dump_json("fig6", &cells);
}

#[derive(Serialize)]
struct LinkCell {
    placement: String,
    rate: f64,
    stream: String,
    policy: String,
    pillar_tsv_energy_nj: Vec<f64>,
    hottest_links: Vec<String>,
}

/// Runs one link-granularity cell and snapshots its per-link telemetry
/// (the reports are plain owned data, so pool workers can return them and
/// the main thread keeps only printing and file writes).
fn run_link_job(
    job: &Job,
    assignments: &[SubsetAssignment],
    stream: StreamVersion,
) -> (LinkEnergyReport, HeatmapReport) {
    let (mesh, elevators) = job.placement.instantiate();
    let assignment = &assignments[placement_index(job.placement)];
    let (warmup, measure, _) = phases(job.placement);
    let config = sim_config(job.placement, 51);
    let mut sim = Simulator::from_input(
        config.clone(),
        Workload::Uniform.build_input(stream, &mesh, job.rate, 999),
        make_selector(job.policy, &mesh, &elevators, Some(assignment), 77),
    );
    ok_or_die(sim.advance(warmup), "fig6 links warm-up");
    ok_or_die(sim.measure_window(measure), "fig6 links measure window");
    (
        LinkEnergyReport::from_ledger(sim.link_map(), sim.link_ledger(), &config.energy),
        HeatmapReport::from_ledger(sim.link_map(), sim.link_ledger(), &config.energy),
    )
}

/// Fig. 6 at link granularity: per-pillar TSV energy and hottest links,
/// from the same runs as the aggregate cells but driven through the
/// simulator directly so the per-link ledger stays accessible. The grid
/// runs on the same pool as the aggregate mode.
fn links_mode(stream: StreamVersion) {
    let assignments: Vec<SubsetAssignment> = Placement::ALL
        .iter()
        .map(|&p| offline_assignment(p))
        .collect();
    let mut jobs = Vec::new();
    for placement in Placement::ALL {
        let (low, high) = fig6_rates(placement);
        for rate in [low, high] {
            for policy in Policy::MAIN {
                jobs.push(Job {
                    placement,
                    policy,
                    rate,
                });
            }
        }
    }
    let snapshots = par_map(&jobs, default_threads(), |_, job| {
        run_link_job(job, &assignments, stream)
    });

    let mut cells = Vec::new();
    let mut results = jobs.iter().zip(snapshots);
    for placement in Placement::ALL {
        let (_, high) = fig6_rates(placement);
        println!("\n# Fig. 6 (link granularity): {}", placement.name());
        let mut rows = Vec::new();
        for _ in 0..2 * Policy::MAIN.len() {
            let (job, (report, heat)) = results.next().expect("one snapshot per job");
            let hottest: Vec<String> = report
                .hottest(3)
                .iter()
                .map(|r| {
                    format!(
                        "{}-{}-{} {} ({:.0} nJ)",
                        r.src.0, r.src.1, r.src.2, r.dir, r.attributed_nj
                    )
                })
                .collect();
            let tsv_total: f64 = heat.pillar_tsv_energy_nj.iter().sum();
            rows.push(vec![
                f4(job.rate),
                job.policy.name().to_string(),
                f2(tsv_total),
                hottest.first().cloned().unwrap_or_default(),
            ]);

            // Full per-link artefacts for AdEle at the high rate: the
            // link-granular reproduction the ROADMAP item asks for.
            if job.policy == Policy::Adele && job.rate == high {
                let dir = results_dir();
                let name = placement.name();
                report
                    .write_csv(&dir.join(format!("fig6_links_{name}.csv")))
                    .expect("write per-link CSV");
                heat.write_json(&dir.join(format!("fig6_heatmap_{name}.json")))
                    .expect("write heatmap JSON");
            }

            cells.push(LinkCell {
                placement: placement.name().to_string(),
                rate: job.rate,
                stream: stream.to_string(),
                policy: job.policy.name().to_string(),
                pillar_tsv_energy_nj: heat.pillar_tsv_energy_nj,
                hottest_links: hottest,
            });
        }
        print_table(&["rate", "policy", "tsv_energy_nj", "hottest link"], &rows);
    }
    println!("\nper-link CSV + layer/pillar heatmap JSON written to results/ (AdEle, high rate);");
    println!("TSVs are cheap per hop but concentrate on few pillars — the per-pillar view above.");
    dump_json("fig6_links", &cells);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let stream = stream_flag(&mut args);
    let links = args.iter().any(|a| a == "--links")
        || std::env::var("ADELE_FIG6_LINKS")
            .map(|v| v == "1")
            .unwrap_or(false);
    if links {
        links_mode(stream);
    } else {
        standard_mode(stream);
    }
}
