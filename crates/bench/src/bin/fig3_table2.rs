//! Fig. 3 + Table II — AMOSA elevator-subset exploration on the large
//! 8×8×4 network (PM): the explored-solution cloud, the Pareto front, and
//! the network performance (latency, energy/flit) of six solutions S0–S5
//! spread along the front versus Elevator-First.

use adele::online::AdeleSelector;
use adele_bench::{
    dump_json, f1, f2, make_selector, offline_result, ok_or_die, print_table, sim_config,
    table2_rate, Policy, Workload,
};
use noc_sim::harness::run_once;
use noc_topology::placement::Placement;
use serde::Serialize;

#[derive(Serialize)]
struct FrontPoint {
    variance: f64,
    distance: f64,
}

#[derive(Serialize)]
struct Table2Row {
    label: String,
    variance: Option<f64>,
    distance: Option<f64>,
    latency: f64,
    energy_per_flit_nj: f64,
    completed: bool,
}

#[derive(Serialize)]
struct Fig3Table2 {
    explored: Vec<FrontPoint>,
    pareto: Vec<FrontPoint>,
    evaluations: u64,
    table2: Vec<Table2Row>,
}

fn main() {
    let placement = Placement::Pm;
    let (mesh, elevators) = placement.instantiate();
    println!("# Fig. 3: AMOSA exploration on PM (8x8x4, 12 elevators), uniform assumed traffic");
    let result = offline_result(placement);
    println!(
        "AMOSA evaluations: {}; Pareto-front size: {}; explored points recorded: {}",
        result.evaluations,
        result.pareto.len(),
        result.explored.len()
    );

    println!("\n## Pareto front (utilization variance vs average distance)");
    print_table(
        &["solution", "util. variance", "avg distance"],
        &result
            .pareto
            .iter()
            .enumerate()
            .map(|(i, p)| {
                vec![
                    format!("p{i}"),
                    f2(p.utilization_variance),
                    f2(p.average_distance),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("paper Fig. 3: variance spans ≈0–7, distance ≈6.65–6.95 (absolute scales differ");
    println!("with our re-derived PM placement; the trade-off shape is the comparison).");

    // ---- Table II: simulate S0..S5 + Elevator-First on PM. ----
    let picks = result.spread(6);
    let rate = table2_rate();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();

    let ef = ok_or_die(
        run_once(
            &sim_config(placement, 31),
            Workload::Uniform.build(&mesh, rate, 555),
            make_selector(Policy::ElevFirst, &mesh, &elevators, None, 77),
        ),
        "table2 ElevFirst run",
    );
    rows.push(vec![
        "ElevFirst".to_string(),
        "-".to_string(),
        "-".to_string(),
        f1(ef.avg_latency),
        f1(ef.energy_per_flit_nj),
    ]);
    json_rows.push(Table2Row {
        label: "ElevFirst".into(),
        variance: None,
        distance: None,
        latency: ef.avg_latency,
        energy_per_flit_nj: ef.energy_per_flit_nj,
        completed: ef.completed,
    });

    for (i, pick) in picks.iter().enumerate() {
        let selector = AdeleSelector::from_solution(&mesh, &elevators, pick, 77);
        let summary = ok_or_die(
            run_once(
                &sim_config(placement, 31),
                Workload::Uniform.build(&mesh, rate, 555),
                Box::new(selector),
            ),
            &format!("table2 S{i} run"),
        );
        rows.push(vec![
            format!("S{i}"),
            f2(pick.utilization_variance),
            f2(pick.average_distance),
            format!(
                "{}{}",
                f1(summary.avg_latency),
                if summary.completed { "" } else { "*" }
            ),
            f1(summary.energy_per_flit_nj),
        ]);
        json_rows.push(Table2Row {
            label: format!("S{i}"),
            variance: Some(pick.utilization_variance),
            distance: Some(pick.average_distance),
            latency: summary.avg_latency,
            energy_per_flit_nj: summary.energy_per_flit_nj,
            completed: summary.completed,
        });
    }

    println!("\n# Table II: performance of selected solutions (PM, uniform @ rate {rate})");
    print_table(
        &[
            "solution",
            "variance",
            "distance",
            "latency (cyc)",
            "energy/flit (nJ)",
        ],
        &rows,
    );
    println!("paper Table II: ElevFirst 161.4 cyc / 94.4 nJ; S0 396 / 93.1; S5 56.6 / 98.3 —");
    println!("latency falls S0→S5 as variance falls, energy rises slightly with distance.");

    dump_json(
        "fig3_table2",
        &Fig3Table2 {
            explored: result
                .explored
                .iter()
                .map(|e| FrontPoint {
                    variance: e.utilization_variance,
                    distance: e.average_distance,
                })
                .collect(),
            pareto: result
                .pareto
                .iter()
                .map(|p| FrontPoint {
                    variance: p.utilization_variance,
                    distance: p.average_distance,
                })
                .collect(),
            evaluations: result.evaluations,
            table2: json_rows,
        },
    );
}
