//! Shared infrastructure for the paper-reproduction harness.
//!
//! Every `fig*`/`table*` binary builds on the helpers here: placement
//! presets, policy construction (including running/caching the offline
//! AMOSA stage), figure-specific injection-rate grids, table printing and
//! JSON result dumping.
//!
//! Set `ADELE_QUICK=1` to shrink warm-up/measurement windows and the
//! AMOSA schedule — useful for smoke-testing every harness quickly.

#![forbid(unsafe_code)]

use adele::offline::{OfflineOptimizer, OfflineResult, SelectionStrategy, SubsetAssignment};
use adele::online::{AdeleSelector, CdaSelector, ElevatorFirstSelector, ElevatorSelector};
use adele::AdeleConfig;
use amosa::AmosaParams;
use noc_exp::Scenario;
use noc_sim::{SimConfig, TrafficInput};
use noc_topology::placement::Placement;
use noc_topology::{ElevatorSet, Mesh3d};
use noc_traffic::apps::{AppKind, AppTraffic};
use noc_traffic::{BatchedSynthetic, CyclePolled, StreamVersion, SyntheticTraffic, TrafficSource};
use serde::Serialize;
use std::path::PathBuf;

/// `true` when `ADELE_QUICK=1` — shorter windows everywhere.
#[must_use]
pub fn quick_mode() -> bool {
    std::env::var("ADELE_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Simulation windows `(warmup, measure, drain_max)` for a placement,
/// honouring quick mode.
#[must_use]
pub fn phases(placement: Placement) -> (u64, u64, u64) {
    let large = matches!(placement, Placement::Pm);
    if quick_mode() {
        if large {
            (500, 2_000, 8_000)
        } else {
            (1_000, 4_000, 12_000)
        }
    } else if large {
        (3_000, 12_000, 40_000)
    } else {
        (5_000, 20_000, 60_000)
    }
}

/// Standard [`SimConfig`] for a placement.
#[must_use]
pub fn sim_config(placement: Placement, seed: u64) -> SimConfig {
    let (mesh, elevators) = placement.instantiate();
    let (warmup, measure, drain) = phases(placement);
    SimConfig::new(mesh, elevators)
        .with_phases(warmup, measure, drain)
        .with_seed(seed)
}

/// The four policies of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Nearest-elevator baseline [10].
    ElevFirst,
    /// Congestion-aware dynamic assignment with idealised global info [12].
    Cda,
    /// The paper's contribution.
    Adele,
    /// AdEle with plain round-robin (ablation of Fig. 4(d)/(h)).
    AdeleRr,
}

impl Policy {
    /// The three policies every figure compares.
    pub const MAIN: [Policy; 3] = [Policy::ElevFirst, Policy::Cda, Policy::Adele];

    /// Printed column name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Policy::ElevFirst => "ElevFirst",
            Policy::Cda => "CDA",
            Policy::Adele => "AdEle",
            Policy::AdeleRr => "AdEle-RR",
        }
    }
}

/// AMOSA parameters for the offline stage, honouring quick mode.
#[must_use]
pub fn amosa_params(seed: u64) -> AmosaParams {
    if quick_mode() {
        AmosaParams::fast(seed)
    } else {
        AmosaParams {
            hard_limit: 60,
            soft_limit: 120,
            t_max: 100.0,
            t_min: 1e-3,
            alpha: 0.88,
            iterations_per_temperature: 60,
            initial_solutions: 120,
            seed,
        }
    }
}

/// Runs (or loads from the `results/` cache) the offline AMOSA stage for a
/// placement and returns the latency-leaning subset assignment the paper
/// selects for its main evaluation (its `S5`).
#[must_use]
pub fn offline_assignment(placement: Placement) -> SubsetAssignment {
    let (mesh, elevators) = placement.instantiate();
    let cache = results_dir().join(format!(
        "subsets_{}_{}.txt",
        placement.name(),
        if quick_mode() { "quick" } else { "full" }
    ));
    if let Ok(text) = std::fs::read_to_string(&cache) {
        if let Ok(assignment) = SubsetAssignment::from_text(&text) {
            if assignment.check_compatible(&mesh, &elevators).is_ok() {
                return assignment;
            }
        }
    }
    let result = offline_result(placement);
    let chosen = result.select(SelectionStrategy::balanced());
    let _ = std::fs::create_dir_all(results_dir());
    let _ = std::fs::write(&cache, chosen.assignment.to_text());
    chosen.assignment.clone()
}

/// Runs the offline AMOSA stage from scratch (Fig. 3 / Table II need the
/// full front and exploration cloud, not just one pick).
#[must_use]
pub fn offline_result(placement: Placement) -> OfflineResult {
    let (mesh, elevators) = placement.instantiate();
    OfflineOptimizer::new(mesh, elevators)
        .with_params(amosa_params(0xADE1E))
        .optimize()
}

/// Builds a fresh selector for `policy`. AdEle variants need the offline
/// `assignment`.
///
/// # Panics
///
/// Panics if an AdEle policy is requested without an assignment.
#[must_use]
pub fn make_selector(
    policy: Policy,
    mesh: &Mesh3d,
    elevators: &ElevatorSet,
    assignment: Option<&SubsetAssignment>,
    seed: u64,
) -> Box<dyn ElevatorSelector> {
    match policy {
        Policy::ElevFirst => Box::new(ElevatorFirstSelector::new(mesh, elevators)),
        Policy::Cda => Box::new(CdaSelector::new()),
        Policy::Adele | Policy::AdeleRr => {
            let assignment = assignment.expect("AdEle needs the offline assignment");
            let config = if policy == Policy::Adele {
                AdeleConfig::paper_default()
            } else {
                AdeleConfig::rr_only()
            };
            Box::new(
                AdeleSelector::from_assignment(mesh, elevators, assignment, config, seed)
                    .expect("assignment matches topology"),
            )
        }
    }
}

/// The two synthetic workloads of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Uniform random.
    Uniform,
    /// Perfect shuffle.
    Shuffle,
}

impl Workload {
    /// Paper-order list.
    pub const ALL: [Workload; 2] = [Workload::Uniform, Workload::Shuffle];

    /// Printed name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Workload::Uniform => "Uniform",
            Workload::Shuffle => "Shuffle",
        }
    }

    /// Builds the workload at `rate` packets/node/cycle.
    #[must_use]
    pub fn build(self, mesh: &Mesh3d, rate: f64, seed: u64) -> Box<dyn TrafficSource> {
        match self {
            Workload::Uniform => Box::new(SyntheticTraffic::uniform(mesh, rate, seed)),
            Workload::Shuffle => Box::new(SyntheticTraffic::shuffle(mesh, rate, seed)),
        }
    }

    /// Builds the workload on the chosen stream: `v1` is the classic
    /// polled source (the figures' historical bit-stable stream), `v2`
    /// the batched event-driven one. The two streams draw different
    /// packet sequences by design, so figure dumps record which one
    /// produced them.
    #[must_use]
    pub fn build_input(
        self,
        stream: StreamVersion,
        mesh: &Mesh3d,
        rate: f64,
        seed: u64,
    ) -> TrafficInput {
        match (stream, self) {
            (StreamVersion::V1, _) => TrafficInput::Polled(self.build(mesh, rate, seed)),
            (StreamVersion::V2, Workload::Uniform) => {
                TrafficInput::Scheduled(Box::new(BatchedSynthetic::uniform(mesh, rate, seed)))
            }
            (StreamVersion::V2, Workload::Shuffle) => {
                TrafficInput::Scheduled(Box::new(BatchedSynthetic::shuffle(mesh, rate, seed)))
            }
        }
    }
}

/// Parses and strips `--stream v1|v2` from `args` (default `v1`, the
/// figures' historical stream), so positional-argument parsing in the
/// fig binaries keeps working unchanged after the flag.
pub fn stream_flag(args: &mut Vec<String>) -> StreamVersion {
    let Some(at) = args.iter().position(|a| a == "--stream") else {
        return StreamVersion::V1;
    };
    let stream = match args.get(at + 1).map(|s| s.parse::<StreamVersion>()) {
        Some(Ok(stream)) => stream,
        Some(Err(e)) => {
            eprintln!("--stream: {e}");
            std::process::exit(2);
        }
        None => {
            eprintln!("--stream needs a value (v1 or v2)");
            std::process::exit(2);
        }
    };
    args.drain(at..=at + 1);
    stream
}

/// Builds the synthetic application workload for Fig. 7 on `placement`,
/// scaled so a full-intensity app loads the network near (but below) the
/// placement's saturation — mirroring the heavy Gem5 traces the paper
/// feeds to every placement.
#[must_use]
pub fn app_traffic(
    kind: AppKind,
    placement: Placement,
    mesh: &Mesh3d,
    seed: u64,
) -> Box<dyn TrafficSource> {
    Box::new(AppTraffic::new(kind, mesh, fig7_base_rate(placement), seed))
}

/// [`app_traffic`] on the chosen stream: the app models are inherently
/// polled, so `v2` rides the injection calendar through the
/// [`CyclePolled`] adapter — same per-cycle draw sequence, delivered as
/// scheduled batches.
#[must_use]
pub fn app_traffic_input(
    kind: AppKind,
    placement: Placement,
    mesh: &Mesh3d,
    seed: u64,
    stream: StreamVersion,
) -> TrafficInput {
    let source = app_traffic(kind, placement, mesh, seed);
    match stream {
        StreamVersion::V1 => TrafficInput::Polled(source),
        StreamVersion::V2 => {
            TrafficInput::Scheduled(Box::new(CyclePolled::new(source, mesh.node_count())))
        }
    }
}

/// Injection-rate grid for one Fig. 4 panel, matching the paper's x-axes.
#[must_use]
pub fn fig4_rates(placement: Placement, workload: Workload) -> Vec<f64> {
    let max = match (placement, workload) {
        (Placement::Ps1, Workload::Uniform) => 0.006,
        (Placement::Ps2, Workload::Uniform) => 0.008,
        (Placement::Ps3, Workload::Uniform) => 0.010,
        (Placement::Pm, Workload::Uniform) => 0.006,
        (Placement::Ps1, Workload::Shuffle) => 0.008,
        (Placement::Ps2, Workload::Shuffle) => 0.010,
        (Placement::Ps3, Workload::Shuffle) => 0.015,
        (Placement::Pm, Workload::Shuffle) => 0.006,
    };
    let points = if quick_mode() { 4 } else { 6 };
    (1..=points)
        .map(|i| max * i as f64 / points as f64)
        .collect()
}

/// Fig. 6's (low, high) injection rates per placement. Low is the paper's
/// 1e-3; high sits at ≈80 % of each configuration's saturation.
#[must_use]
pub fn fig6_rates(placement: Placement) -> (f64, f64) {
    match placement {
        Placement::Ps1 => (0.001, 0.005),
        Placement::Ps2 => (0.001, 0.0065),
        Placement::Ps3 => (0.001, 0.009),
        Placement::Pm => (0.001, 0.005),
    }
}

/// Base injection rate for the Fig. 7 application models (scaled by each
/// app's intensity): 85 % of the placement's near-saturation rate, so
/// heavy apps contend hard for elevators (with bursts overshooting
/// transiently) while light apps stay near zero-load.
#[must_use]
pub fn fig7_base_rate(placement: Placement) -> f64 {
    fig6_rates(placement).1 * 0.85
}

/// Fixed injection rate used to compare Table II's S0–S5 picks on PM —
/// just past Elevator-First's saturation knee, where the paper's baseline
/// sits at ≈161 cycles.
#[must_use]
pub fn table2_rate() -> f64 {
    0.004
}

/// The scaling-study elevator geometry: one pillar column per 4×4 tile
/// (`(4i+2, 4j+2)`), giving the same pillar density at every mesh size —
/// 4 columns on 8×8, 16 on 16×16, 64 on 32×32. Shared by the `scale`
/// binary and the `step_hot_path` bench so the README table and the
/// recorded bench always measure the same fabric.
#[must_use]
pub fn pillar_grid(x: usize, y: usize) -> Vec<(u8, u8)> {
    (0..x as u8 / 4)
        .flat_map(|i| (0..y as u8 / 4).map(move |j| (4 * i + 2, 4 * j + 2)))
        .collect()
}

/// Applies the `ADELE_QUICK=1` window shrink to a scenario in place:
/// quarter warm-up/measure (floored so the canonical suite's events still
/// land inside the run) and half the drain budget. Topology, workload,
/// events and seed are untouched, so a quick run exercises the same
/// machinery on the same fabric — just for fewer cycles. Shared by
/// `run_specs` and `noc_trace selfcheck` so both smoke modes shrink
/// identically.
pub fn quick_shrink(scenario: &mut Scenario) {
    scenario.warmup = (scenario.warmup / 4).max(500);
    scenario.measure = (scenario.measure / 4).max(2_000);
    scenario.drain_max /= 2;
}

/// Provenance stamp embedded in recorded benchmark JSON (`BENCH_*.json`):
/// which tree produced the numbers and on what machine shape — so a
/// checked-in record can be judged against the host reproducing it.
#[derive(Debug, Clone, Serialize)]
pub struct BenchMeta {
    /// `git describe --always --dirty` of the tree, or `"unknown"`.
    pub git: String,
    /// The host's available parallelism.
    pub host_cores: usize,
    /// The `NOC_THREADS` pin in effect, if any.
    pub noc_threads: Option<String>,
    /// Workload streams the grid covers.
    pub streams: Vec<String>,
    /// Mesh shard counts the grid covers.
    pub shard_counts: Vec<usize>,
}

/// Builds the provenance stamp for a benchmark covering `streams` ×
/// `shard_counts`. Best effort: a missing `git` binary degrades to
/// `"unknown"`, never an error.
#[must_use]
pub fn bench_meta(streams: &[&str], shard_counts: &[usize]) -> BenchMeta {
    let git = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    BenchMeta {
        git,
        host_cores: std::thread::available_parallelism().map_or(1, usize::from),
        noc_threads: std::env::var("NOC_THREADS").ok(),
        streams: streams.iter().map(ToString::to_string).collect(),
        shard_counts: shard_counts.to_vec(),
    }
}

/// Workspace `results/` directory (created on demand).
#[must_use]
pub fn results_dir() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    root.join("results")
}

/// Dumps a serialisable result to `results/<name>.json` (best effort).
/// The write is atomic ([`noc_exp::atomic_write`]): a crash mid-dump
/// leaves the previous file intact, never a torn one.
pub fn dump_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if let Ok(json) = serde_json::to_string_pretty(value) {
        let _ = noc_exp::atomic_write(&dir.join(format!("{name}.json")), &json);
    }
}

/// Unwraps a simulation result in a trusted figure binary, or exits with
/// code 3 after printing the structured error — the figure suites treat
/// an engine failure (a deadlock on a vetted spec) as a fatal authoring
/// bug, but report it as a value instead of a panic backtrace.
pub fn ok_or_die<T>(result: Result<T, noc_sim::SimError>, context: &str) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("error: {context}: {e}");
        std::process::exit(3);
    })
}

/// Prints a fixed-width table: header row then rows of cells.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats a float with 1 decimal.
#[must_use]
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with 2 decimals.
#[must_use]
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 4 decimals (rates).
#[must_use]
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_grids_are_increasing_and_positive() {
        for placement in Placement::ALL {
            for workload in Workload::ALL {
                let rates = fig4_rates(placement, workload);
                assert!(!rates.is_empty());
                assert!(rates.windows(2).all(|w| w[0] < w[1]));
                assert!(rates[0] > 0.0);
            }
            let (low, high) = fig6_rates(placement);
            assert!(low < high);
        }
    }

    #[test]
    fn selector_factory_builds_all_policies() {
        let placement = Placement::Ps1;
        let (mesh, elevators) = placement.instantiate();
        let assignment = SubsetAssignment::full(&mesh, &elevators);
        for policy in [
            Policy::ElevFirst,
            Policy::Cda,
            Policy::Adele,
            Policy::AdeleRr,
        ] {
            let sel = make_selector(policy, &mesh, &elevators, Some(&assignment), 1);
            assert_eq!(sel.name(), policy.name());
        }
    }

    #[test]
    fn workloads_build_on_all_placements() {
        for placement in Placement::ALL {
            let (mesh, _) = placement.instantiate();
            for workload in Workload::ALL {
                let t = workload.build(&mesh, 0.001, 2);
                assert!(t.mean_rate().unwrap() > 0.0);
            }
        }
    }

    #[test]
    fn quick_shrink_quarters_windows_with_floors() {
        let (mesh, elevators) = Placement::Ps1.instantiate();
        let mut scenario =
            Scenario::new("shrink", mesh, elevators).with_phases(1_000, 4_000, 20_000);
        quick_shrink(&mut scenario);
        assert_eq!(
            (scenario.warmup, scenario.measure, scenario.drain_max),
            (500, 2_000, 10_000)
        );
        // Short windows hit the floors instead of collapsing to zero.
        let mut tiny = Scenario::new("tiny", mesh, Placement::Ps1.instantiate().1)
            .with_phases(100, 400, 2_000);
        quick_shrink(&mut tiny);
        assert_eq!((tiny.warmup, tiny.measure), (500, 2_000));
    }

    #[test]
    fn bench_meta_captures_the_grid() {
        let meta = bench_meta(&["v1", "v2"], &[1, 8]);
        assert!(!meta.git.is_empty());
        assert!(meta.host_cores >= 1);
        assert_eq!(meta.streams, vec!["v1", "v2"]);
        assert_eq!(meta.shard_counts, vec![1, 8]);
    }

    #[test]
    fn table_printer_handles_ragged_rows() {
        // Smoke test: must not panic.
        print_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
