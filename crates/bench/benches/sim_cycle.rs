//! Micro-benchmarks of the cycle-level simulator core: cycles/second on
//! the paper's two network sizes at moderate load.

use adele::online::ElevatorFirstSelector;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_sim::{SimConfig, Simulator};
use noc_topology::placement::Placement;
use noc_traffic::SyntheticTraffic;

fn bench_network_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_cycle");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    for placement in [Placement::Ps1, Placement::Pm] {
        group.bench_with_input(
            BenchmarkId::new("steps_1000", placement.name()),
            &placement,
            |b, &placement| {
                b.iter_batched(
                    || {
                        let (mesh, elevators) = placement.instantiate();
                        let traffic = SyntheticTraffic::uniform(&mesh, 0.003, 1);
                        let selector = ElevatorFirstSelector::new(&mesh, &elevators);
                        let config = SimConfig::new(mesh, elevators).with_seed(1);
                        let mut sim = Simulator::new(config, Box::new(traffic), Box::new(selector));
                        // Pre-warm so buffers carry realistic occupancy.
                        for _ in 0..500 {
                            sim.step().unwrap();
                        }
                        sim
                    },
                    |mut sim| {
                        for _ in 0..1_000 {
                            sim.step().unwrap();
                        }
                        sim.cycle()
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_network_step);
criterion_main!(benches);
