//! Micro-benchmark of the arena-based `Network::step` hot path: steady
//! cycles/second from the paper's PM scale up to 32×32×8, at near-idle
//! (injection-scheduler dominated), low (idle-skip dominated) and
//! moderate (switching dominated) injection — on both workload streams
//! (`v1` polled, `v2` batched event-driven injection).
//!
//! Besides the criterion timings, a full `cargo bench` run emits
//! `BENCH_step.json` at the workspace root — the machine-readable record
//! the README's performance table cites. Under `cargo test` the bodies
//! smoke-run once and nothing is written (so test runs never dirty the
//! tree with timing noise).

use adele::online::ElevatorFirstSelector;
use adele_bench::{bench_meta, pillar_grid, BenchMeta};
use criterion::{criterion_group, BenchmarkId, Criterion};
use noc_sim::{SimConfig, Simulator, TrafficInput};
use noc_topology::{ElevatorSet, Mesh3d};
use noc_traffic::{BatchedSynthetic, StreamVersion, SyntheticTraffic};
use serde::Serialize;
use std::time::Instant;

/// The benchmark grid: (mesh extents, injection rate). Every point is
/// measured on both workload streams.
const GRID: [((usize, usize, usize), f64); 8] = [
    ((8, 8, 4), 0.0005),
    ((8, 8, 4), 0.002),
    ((16, 16, 8), 0.00005),
    ((16, 16, 8), 0.0005),
    ((16, 16, 8), 0.002),
    ((32, 32, 8), 0.00005),
    ((32, 32, 8), 0.0005),
    ((32, 32, 8), 0.002),
];

const STREAMS: [StreamVersion; 2] = [StreamVersion::V1, StreamVersion::V2];

/// Shard counts for the JSON record: the sequential engine and the
/// sharded engine at the scaling study's widest split. On a machine with
/// few cores the sharded points record the (small) partition overhead;
/// with cores available they record the speedup — either way the number
/// is the measured truth for this host, and results are bit-identical.
const SHARD_COUNTS: [usize; 2] = [1, 8];

/// A warmed-up simulator on the `scale` study's shared pillar geometry.
fn warmed_sim(
    extents: (usize, usize, usize),
    rate: f64,
    stream: StreamVersion,
    shards: usize,
    warmup: u64,
) -> Simulator {
    let (x, y, z) = extents;
    let mesh = Mesh3d::new(x, y, z).expect("bench dimensions are valid");
    let elevators = ElevatorSet::new(&mesh, pillar_grid(x, y)).expect("grid fits the mesh");
    let config = SimConfig::new(mesh, elevators.clone())
        .with_seed(7)
        .with_shards(shards);
    let input = match stream {
        StreamVersion::V1 => {
            TrafficInput::Polled(Box::new(SyntheticTraffic::uniform(&mesh, rate, 7)))
        }
        StreamVersion::V2 => {
            TrafficInput::Scheduled(Box::new(BatchedSynthetic::uniform(&mesh, rate, 7)))
        }
    };
    let selector = ElevatorFirstSelector::new(&mesh, &elevators);
    let mut sim = Simulator::from_input(config, input, Box::new(selector));
    sim.advance(warmup).unwrap();
    sim
}

fn bench_step_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_hot_path");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    for (extents, rate) in GRID {
        for stream in STREAMS {
            let label = format!("{}x{}x{}@{rate}/{stream}", extents.0, extents.1, extents.2);
            group.bench_with_input(
                BenchmarkId::new("steps_200", label),
                &(extents, rate, stream),
                |b, &(extents, rate, stream)| {
                    b.iter_batched(
                        || warmed_sim(extents, rate, stream, 1, 500),
                        |mut sim| {
                            for _ in 0..200 {
                                sim.step().unwrap();
                            }
                            sim.cycle()
                        },
                        criterion::BatchSize::LargeInput,
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_step_hot_path);

#[derive(Serialize)]
struct StepPoint {
    mesh: String,
    rate: f64,
    stream: String,
    shards: usize,
    cycles: u64,
    ns_per_cycle: f64,
    cycles_per_second: f64,
}

#[derive(Serialize)]
struct StepReport {
    bench: &'static str,
    mode: &'static str,
    /// Provenance: which tree and machine shape produced the numbers.
    meta: BenchMeta,
    points: Vec<StepPoint>,
}

/// Times each grid point directly (best of 3 windows) and writes
/// `BENCH_step.json` at the workspace root.
fn emit_json() {
    let (warmup, cycles, reps) = (2_000, 10_000u64, 3);
    let mut points = Vec::new();
    for (extents, rate) in GRID {
        for stream in STREAMS {
            for shards in SHARD_COUNTS {
                let mut best = f64::INFINITY;
                for _ in 0..reps {
                    let mut sim = warmed_sim(extents, rate, stream, shards, warmup);
                    let start = Instant::now();
                    sim.advance(cycles).unwrap();
                    best = best.min(start.elapsed().as_secs_f64());
                }
                points.push(StepPoint {
                    mesh: format!("{}x{}x{}", extents.0, extents.1, extents.2),
                    rate,
                    stream: stream.to_string(),
                    shards,
                    cycles,
                    ns_per_cycle: best * 1e9 / cycles as f64,
                    cycles_per_second: cycles as f64 / best,
                });
            }
        }
    }
    let report = StepReport {
        bench: "step_hot_path",
        mode: "bench",
        meta: bench_meta(&["v1", "v2"], &SHARD_COUNTS),
        points,
    };
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let json = serde_json::to_string_pretty(&report).expect("report encodes");
    let path = root.join("BENCH_step.json");
    if std::fs::write(&path, json + "\n").is_ok() {
        println!("wrote {}", path.display());
    }
}

fn main() {
    // `cargo test` probes harness = false targets with `--list`; answer
    // the protocol without running benchmarks (mirrors criterion_main!).
    if std::env::args().any(|a| a == "--list") {
        println!("0 tests, 0 benchmarks");
        return;
    }
    benches();
    // Record the measurement only under `cargo bench`; `cargo test`
    // smoke passes leave the checked-in record untouched.
    if std::env::args().any(|a| a == "--bench") {
        emit_json();
    }
}
