//! Micro-benchmarks of the offline stage: objective evaluation throughput
//! (the inner loop of AMOSA) and a complete small annealing run.

use adele::offline::{ElevatorSubsetProblem, ObjectiveEvaluator, SubsetAssignment};
use amosa::{Amosa, AmosaParams, Problem};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_topology::placement::Placement;
use std::hint::black_box;

fn bench_objectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("amosa_objectives");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for placement in [Placement::Ps1, Placement::Pm] {
        let (mesh, elevators) = placement.instantiate();
        let evaluator = ObjectiveEvaluator::uniform(&mesh, &elevators);
        let assignment = SubsetAssignment::nearest(&mesh, &elevators);
        group.bench_with_input(
            BenchmarkId::new("evaluate", placement.name()),
            &(),
            |b, ()| b.iter(|| black_box(evaluator.evaluate(black_box(&assignment)))),
        );
    }
    group.finish();
}

fn bench_full_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("amosa_search");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    group.bench_function("fast_schedule_ps1", |b| {
        let (mesh, elevators) = Placement::Ps1.instantiate();
        b.iter(|| {
            let problem = ElevatorSubsetProblem::new(&mesh, &elevators);
            let result = Amosa::new(problem, AmosaParams::fast(7)).run();
            black_box(result.archive.len())
        });
    });
    group.finish();
}

fn bench_neighbour_moves(c: &mut Criterion) {
    use rand::{rngs::StdRng, SeedableRng};
    let (mesh, elevators) = Placement::Pm.instantiate();
    let problem = ElevatorSubsetProblem::new(&mesh, &elevators);
    let mut rng = StdRng::seed_from_u64(1);
    let solution = problem.random_solution(&mut rng);
    c.bench_function("amosa_neighbour_pm", |b| {
        b.iter(|| black_box(problem.neighbour(black_box(&solution), &mut rng)))
    });
}

criterion_group!(
    benches,
    bench_objectives,
    bench_full_search,
    bench_neighbour_moves
);
criterion_main!(benches);
