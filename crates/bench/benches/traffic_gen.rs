//! Micro-benchmarks of traffic generation: synthetic patterns and the
//! application models, measured as whole-network cycles of injection
//! decisions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_topology::Mesh3d;
use noc_traffic::apps::{AppKind, AppTraffic};
use noc_traffic::{SyntheticTraffic, TrafficSource};
use std::hint::black_box;

fn whole_network_cycle(source: &mut dyn TrafficSource, mesh: &Mesh3d, cycle: u64) -> usize {
    let mut injected = 0;
    for node in mesh.node_ids() {
        if source.maybe_inject(node, cycle).is_some() {
            injected += 1;
        }
    }
    injected
}

fn bench_synthetic(c: &mut Criterion) {
    let mesh = Mesh3d::new(8, 8, 4).unwrap();
    let mut group = c.benchmark_group("traffic_gen");
    for (name, mut source) in [
        ("uniform", SyntheticTraffic::uniform(&mesh, 0.01, 1)),
        ("shuffle", SyntheticTraffic::shuffle(&mesh, 0.01, 1)),
    ] {
        let mut cycle = 0u64;
        group.bench_with_input(BenchmarkId::new("network_cycle", name), &(), |b, ()| {
            b.iter(|| {
                cycle += 1;
                black_box(whole_network_cycle(&mut source, &mesh, cycle))
            })
        });
    }
    group.finish();
}

fn bench_apps(c: &mut Criterion) {
    let mesh = Mesh3d::new(4, 4, 4).unwrap();
    let mut group = c.benchmark_group("traffic_gen_apps");
    for kind in [AppKind::Canneal, AppKind::Fft, AppKind::Fluidanimate] {
        let mut source = AppTraffic::new(kind, &mesh, 0.01, 1);
        let mut cycle = 0u64;
        group.bench_with_input(
            BenchmarkId::new("network_cycle", kind.name()),
            &(),
            |b, ()| {
                b.iter(|| {
                    cycle += 1;
                    black_box(whole_network_cycle(&mut source, &mesh, cycle))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_synthetic, bench_apps);
criterion_main!(benches);
