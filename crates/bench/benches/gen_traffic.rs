//! Micro-benchmark isolating the *traffic-generation* path — the per-cycle
//! cost of deciding who injects, with no network attached — so the
//! injection scheduler has its own regression trace alongside
//! `step_hot_path`.
//!
//! Two streams per mesh: `v1` polls every node every cycle (one RNG draw
//! per node through the `TrafficSource` vtable), `v2` drains the batched
//! skip-sampling source. At sweep rates the v2 cost is proportional to
//! *injections*, not nodes — the gap is the point of the bench.
//!
//! A full `cargo bench` run also emits `BENCH_gen_traffic.json` at the
//! workspace root; `cargo test` smoke-runs the bodies once and writes
//! nothing.

use adele_bench::{bench_meta, BenchMeta};
use criterion::{criterion_group, BenchmarkId, Criterion};
use noc_topology::Mesh3d;
use noc_traffic::{BatchedSynthetic, ScheduledSource, SyntheticTraffic, TrafficSource};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// The benchmark grid: (mesh extents, injection rate).
const GRID: [((usize, usize, usize), f64); 4] = [
    ((16, 16, 8), 0.0005),
    ((16, 16, 8), 0.002),
    ((32, 32, 8), 0.0005),
    ((32, 32, 8), 0.002),
];

/// One whole-network cycle of polled injection decisions.
fn v1_cycle(source: &mut dyn TrafficSource, mesh: &Mesh3d, cycle: u64) -> usize {
    let mut injected = 0;
    for node in mesh.node_ids() {
        if source.maybe_inject(node, cycle).is_some() {
            injected += 1;
        }
    }
    injected
}

fn bench_gen_traffic(c: &mut Criterion) {
    let mut group = c.benchmark_group("gen_traffic");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for (extents, rate) in GRID {
        let (x, y, z) = extents;
        let mesh = Mesh3d::new(x, y, z).expect("bench dimensions are valid");
        let label = format!("{x}x{y}x{z}@{rate}");

        let mut v1 = SyntheticTraffic::uniform(&mesh, rate, 7);
        let mut cycle = 0u64;
        group.bench_with_input(BenchmarkId::new("v1_cycle", &label), &(), |b, ()| {
            b.iter(|| {
                cycle += 1;
                black_box(v1_cycle(&mut v1, &mesh, cycle))
            })
        });

        let mut v2 = BatchedSynthetic::uniform(&mesh, rate, 7);
        let mut cycle = 0u64;
        group.bench_with_input(BenchmarkId::new("v2_cycle", &label), &(), |b, ()| {
            b.iter(|| {
                cycle += 1;
                black_box(v2.next_injections(cycle).len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gen_traffic);

#[derive(Serialize)]
struct GenPoint {
    mesh: String,
    rate: f64,
    stream: String,
    cycles: u64,
    ns_per_cycle: f64,
}

#[derive(Serialize)]
struct GenReport {
    bench: &'static str,
    mode: &'static str,
    /// Provenance: which tree and machine shape produced the numbers.
    meta: BenchMeta,
    points: Vec<GenPoint>,
}

/// Times each grid point directly (best of 3 windows) and writes
/// `BENCH_gen_traffic.json` at the workspace root.
fn emit_json() {
    let reps = 3;
    let mut points = Vec::new();
    for (extents, rate) in GRID {
        let (x, y, z) = extents;
        let mesh = Mesh3d::new(x, y, z).expect("bench dimensions are valid");
        // Enough cycles for a stable window on both streams.
        let cycles: u64 = 20_000;

        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let mut source = SyntheticTraffic::uniform(&mesh, rate, 7);
            let start = Instant::now();
            for cycle in 0..cycles {
                black_box(v1_cycle(&mut source, &mesh, cycle));
            }
            best = best.min(start.elapsed().as_secs_f64());
        }
        points.push(GenPoint {
            mesh: format!("{x}x{y}x{z}"),
            rate,
            stream: "v1".into(),
            cycles,
            ns_per_cycle: best * 1e9 / cycles as f64,
        });

        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let mut source = BatchedSynthetic::uniform(&mesh, rate, 7);
            let start = Instant::now();
            let mut at = 0u64;
            while at < cycles {
                let up_to = (at + 63).min(cycles - 1);
                black_box(source.next_injections(up_to).len());
                at = up_to + 1;
            }
            best = best.min(start.elapsed().as_secs_f64());
        }
        points.push(GenPoint {
            mesh: format!("{x}x{y}x{z}"),
            rate,
            stream: "v2".into(),
            cycles,
            ns_per_cycle: best * 1e9 / cycles as f64,
        });
    }
    let report = GenReport {
        bench: "gen_traffic",
        mode: "bench",
        // The gen-traffic grid has no shard axis — injection is serial.
        meta: bench_meta(&["v1", "v2"], &[1]),
        points,
    };
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let json = serde_json::to_string_pretty(&report).expect("report encodes");
    let path = root.join("BENCH_gen_traffic.json");
    if std::fs::write(&path, json + "\n").is_ok() {
        println!("wrote {}", path.display());
    }
}

fn main() {
    // `cargo test` probes harness = false targets with `--list`; answer
    // the protocol without running benchmarks (mirrors criterion_main!).
    if std::env::args().any(|a| a == "--list") {
        println!("0 tests, 0 benchmarks");
        return;
    }
    benches();
    if std::env::args().any(|a| a == "--bench") {
        emit_json();
    }
}
