//! One Criterion bench per paper artefact: miniature versions of every
//! figure/table pipeline, so `cargo bench` exercises each experiment's
//! code path end to end. The full-size harnesses (with the paper's
//! parameters and printed tables) are the `fig*`/`table*` binaries in
//! `src/bin/`.

use adele::offline::{OfflineOptimizer, SelectionStrategy};
use adele_bench::{make_selector, Policy, Workload};
use amosa::AmosaParams;
use criterion::{criterion_group, criterion_main, Criterion};
use noc_area::table3;
use noc_sim::harness::run_once;
use noc_sim::SimConfig;
use noc_topology::placement::Placement;
use noc_traffic::apps::{AppKind, AppTraffic};
use std::hint::black_box;

/// A small shared config: PS1 with abbreviated phases.
fn mini_config(seed: u64) -> SimConfig {
    let (mesh, elevators) = Placement::Ps1.instantiate();
    SimConfig::new(mesh, elevators)
        .with_phases(100, 400, 3_000)
        .with_seed(seed)
}

fn mini_run(policy: Policy, workload: Workload, rate: f64) -> noc_sim::RunSummary {
    let (mesh, elevators) = Placement::Ps1.instantiate();
    let assignment = adele::offline::SubsetAssignment::full(&mesh, &elevators);
    run_once(
        &mini_config(3),
        workload.build(&mesh, rate, 5),
        make_selector(policy, &mesh, &elevators, Some(&assignment), 7),
    )
    .expect("mini run uses the default watchdog")
}

fn bench_fig2b(c: &mut Criterion) {
    c.bench_function("fig2b_router_loads", |b| {
        b.iter(|| black_box(mini_run(Policy::ElevFirst, Workload::Uniform, 0.003).router_flits))
    });
}

fn bench_fig3_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_table2");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    group.bench_function("offline_front", |b| {
        let (mesh, elevators) = Placement::Ps1.instantiate();
        b.iter(|| {
            let result = OfflineOptimizer::new(mesh, elevators.clone())
                .with_params(AmosaParams::fast(3))
                .optimize();
            black_box(
                result
                    .select(SelectionStrategy::LatencyLeaning)
                    .utilization_variance,
            )
        })
    });
    group.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    for policy in Policy::MAIN {
        group.bench_function(format!("sweep_point_{}", policy.name()), |b| {
            b.iter(|| black_box(mini_run(policy, Workload::Uniform, 0.004).avg_latency))
        });
    }
    group.finish();
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_elevator_loads", |b| {
        b.iter(|| {
            let summary = mini_run(Policy::Adele, Workload::Uniform, 0.004);
            black_box(summary.elevator_packets)
        })
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6_energy_point", |b| {
        b.iter(|| black_box(mini_run(Policy::Adele, Workload::Uniform, 0.001).energy_per_flit_nj))
    });
}

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    group.bench_function("app_point_canneal", |b| {
        let (mesh, elevators) = Placement::Ps1.instantiate();
        let assignment = adele::offline::SubsetAssignment::full(&mesh, &elevators);
        b.iter(|| {
            let traffic = AppTraffic::new(AppKind::Canneal, &mesh, 0.0035, 9);
            let summary = run_once(
                &mini_config(9),
                Box::new(traffic),
                make_selector(Policy::Adele, &mesh, &elevators, Some(&assignment), 7),
            )
            .expect("mini run uses the default watchdog");
            black_box(summary.avg_latency)
        })
    });
    group.finish();
}

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3_area_model", |b| {
        b.iter(|| black_box(table3(black_box(64), black_box(4))))
    });
}

criterion_group!(
    benches,
    bench_fig2b,
    bench_fig3_table2,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_table3
);
criterion_main!(benches);
