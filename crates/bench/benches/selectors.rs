//! Micro-benchmarks of the per-packet elevator-selection decision for all
//! policies — the operation a router performs on every inter-layer packet
//! (relevant to Table III's pipeline-cycle comparison).

use adele::offline::SubsetAssignment;
use adele::online::{
    AdeleSelector, CdaSelector, ElevatorFirstSelector, ElevatorSelector, SelectionContext,
    ZeroProbe,
};
use adele::AdeleConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use noc_topology::placement::Placement;
use noc_topology::Coord;
use std::hint::black_box;

fn bench_selectors(c: &mut Criterion) {
    let placement = Placement::Pm;
    let (mesh, elevators) = placement.instantiate();
    let assignment = SubsetAssignment::full(&mesh, &elevators);
    let probe = ZeroProbe::new(mesh);
    let src = Coord::new(1, 2, 0);
    let dst = Coord::new(6, 5, 3);
    let ctx = SelectionContext {
        src_id: mesh.node_id(src).unwrap(),
        src,
        dst_id: mesh.node_id(dst).unwrap(),
        dst,
        elevators: &elevators,
        probe: &probe,
        cycle: 0,
    };

    let mut group = c.benchmark_group("selector_decision_pm");
    let mut ef = ElevatorFirstSelector::new(&mesh, &elevators);
    group.bench_function("elev_first", |b| b.iter(|| black_box(ef.select(&ctx))));

    let mut cda = CdaSelector::new();
    group.bench_function("cda", |b| b.iter(|| black_box(cda.select(&ctx))));

    let mut adele = AdeleSelector::from_assignment(
        &mesh,
        &elevators,
        &assignment,
        AdeleConfig::paper_default(),
        1,
    )
    .unwrap();
    group.bench_function("adele", |b| b.iter(|| black_box(adele.select(&ctx))));

    let mut rr =
        AdeleSelector::from_assignment(&mesh, &elevators, &assignment, AdeleConfig::rr_only(), 1)
            .unwrap();
    group.bench_function("adele_rr", |b| b.iter(|| black_box(rr.select(&ctx))));
    group.finish();
}

criterion_group!(benches, bench_selectors);
criterion_main!(benches);
