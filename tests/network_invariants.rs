//! Property-based invariants of the cycle-level network across random
//! topologies, placements and loads: packets always drain at sane loads
//! (deadlock freedom), flit conservation holds, and latency is bounded
//! below by geometry.

use adele::online::ElevatorFirstSelector;
use noc_sim::{SimConfig, Simulator};
use noc_topology::{ElevatorSet, Mesh3d};
use noc_traffic::SyntheticTraffic;
use proptest::prelude::*;

/// Builds a random but valid PC-3DNoC: mesh 2..=4 per dimension, 1..=4
/// distinct elevator columns.
fn arb_topology() -> impl Strategy<Value = (Mesh3d, Vec<(u8, u8)>)> {
    (2usize..=4, 2usize..=4, 2usize..=3).prop_flat_map(|(x, y, z)| {
        let columns = prop::collection::hash_set((0..x as u8, 0..y as u8), 1..=4)
            .prop_map(|set| set.into_iter().collect::<Vec<_>>());
        (Just(Mesh3d::new(x, y, z).unwrap()), columns)
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, ..ProptestConfig::default()
    })]

    /// At modest load every measured packet is delivered: the network is
    /// deadlock-free and conserves flits (the run would panic on a
    /// watchdog deadlock; `completed` certifies full drainage).
    #[test]
    fn random_networks_drain_completely(
        (mesh, columns) in arb_topology(),
        rate in 0.0005f64..0.004,
        seed in 0u64..1000,
    ) {
        let elevators = ElevatorSet::new(&mesh, columns).unwrap();
        let traffic = SyntheticTraffic::uniform(&mesh, rate, seed);
        let selector = ElevatorFirstSelector::new(&mesh, &elevators);
        let config = SimConfig::new(mesh, elevators)
            .with_phases(100, 500, 20_000)
            .with_seed(seed);
        let summary = Simulator::new(config, Box::new(traffic), Box::new(selector)).run().unwrap();

        prop_assert!(summary.completed, "network failed to drain");
        prop_assert_eq!(summary.delivered_packets, summary.injected_packets);
    }

    /// Average latency can never beat the physical floor: every packet
    /// needs at least (packet size + 1) cycles end to end.
    #[test]
    fn latency_respects_serialization_floor(
        (mesh, columns) in arb_topology(),
        seed in 0u64..1000,
    ) {
        let elevators = ElevatorSet::new(&mesh, columns).unwrap();
        let traffic = SyntheticTraffic::uniform(&mesh, 0.002, seed);
        let selector = ElevatorFirstSelector::new(&mesh, &elevators);
        let config = SimConfig::new(mesh, elevators)
            .with_phases(100, 500, 20_000)
            .with_seed(seed);
        let summary = Simulator::new(config, Box::new(traffic), Box::new(selector)).run().unwrap();
        if summary.delivered_packets > 0 {
            // Min packet is 10 flits; head needs ≥1 hop (no self traffic).
            prop_assert!(summary.avg_latency >= 11.0, "latency {} is impossible", summary.avg_latency);
        }
    }

    /// Slot reuse under faults: with packet slots recycling mid-run and a
    /// random elevator failing and recovering while traffic flows, the
    /// network still drains completely, conserves packets, and the table
    /// stays bounded by the in-flight high-water mark. (Delivery of every
    /// injected packet is only possible if recycled slots never corrupted
    /// an in-flight packet's bookkeeping.)
    #[test]
    fn recycling_survives_random_fail_recover_events(
        (mesh, columns) in arb_topology(),
        rate in 0.0005f64..0.004,
        seed in 0u64..1000,
        fail_at in 0u64..600,
        recover_after in 1u64..600,
    ) {
        use noc_sim::hooks::SimCommand;
        use noc_topology::ElevatorId;

        let elevators = ElevatorSet::new(&mesh, columns).unwrap();
        let victim = ElevatorId((seed % elevators.len() as u64) as u8);
        let traffic = SyntheticTraffic::uniform(&mesh, rate, seed);
        let selector = ElevatorFirstSelector::new(&mesh, &elevators);
        let config = SimConfig::new(mesh, elevators)
            .with_phases(100, 800, 20_000)
            .with_seed(seed);
        let mut sim = Simulator::new(config, Box::new(traffic), Box::new(selector));
        sim.schedule_command(fail_at, SimCommand::FailElevator(victim));
        sim.schedule_command(fail_at + recover_after, SimCommand::RecoverElevator(victim));
        sim.advance(100).unwrap();
        let window = sim.measure_window(800).unwrap();

        // Drain with traffic still flowing: every measured packet must
        // still reach its destination despite the mid-run fault (only
        // possible if recycled slots never corrupted in-flight state).
        let mut drained = 0u64;
        while sim.packet_table().measured_outstanding() > 0 {
            sim.step().unwrap();
            drained += 1;
            prop_assert!(drained < 20_000, "network failed to drain across the fault");
        }
        prop_assert!(window.delivered_packets <= window.injected_packets);
        let table = sim.packet_table();
        prop_assert!(table.total_created() > 0);
        prop_assert!(
            table.capacity() <= table.total_created() as usize,
            "capacity {} must never exceed packets created {}",
            table.capacity(),
            table.total_created()
        );
    }

    /// Boundary-channel conservation under a fail/recover storm: at every
    /// committed cycle boundary, every link channel holds exactly
    /// `buffer_depth` tokens (upstream credits + downstream FIFO
    /// occupancy) and every NI channel likewise — so no flit or credit is
    /// ever lost or duplicated crossing a shard boundary. The check runs
    /// at several shard counts (boundary channels move between the inline
    /// and cross-shard exchange paths) and the run must still drain every
    /// measured packet afterwards.
    #[test]
    fn boundary_channels_conserve_flits_and_credits(
        (mesh, columns) in arb_topology(),
        rate in 0.001f64..0.004,
        seed in 0u64..1000,
        storm in prop::collection::vec((0u64..700, 1u64..250), 1..=3),
    ) {
        use noc_sim::hooks::SimCommand;
        use noc_topology::ElevatorId;

        let elevators = ElevatorSet::new(&mesh, columns).unwrap();
        for shards in [2usize, 3, 8] {
            let traffic = SyntheticTraffic::uniform(&mesh, rate, seed);
            let selector = ElevatorFirstSelector::new(&mesh, &elevators);
            let config = SimConfig::new(mesh, elevators.clone())
                .with_phases(100, 600, 20_000)
                .with_seed(seed)
                .with_shards(shards);
            let mut sim = Simulator::new(config, Box::new(traffic), Box::new(selector));
            for (i, &(fail_at, dur)) in storm.iter().enumerate() {
                let victim = ElevatorId(((seed + i as u64) % elevators.len() as u64) as u8);
                sim.schedule_command(fail_at, SimCommand::FailElevator(victim));
                sim.schedule_command(fail_at + dur, SimCommand::RecoverElevator(victim));
            }
            for cycle in 0..1_000u64 {
                sim.step().unwrap();
                if let Err(e) = sim.network().check_flow_conservation() {
                    return Err(TestCaseError::fail(format!(
                        "cycle {cycle}, shards={shards}: {e}"
                    )));
                }
            }
            // No flit was lost across a boundary: the network still
            // drains every measured packet after the storm.
            let mut drained = 0u64;
            while sim.packet_table().measured_outstanding() > 0 {
                sim.step().unwrap();
                drained += 1;
                prop_assert!(
                    drained < 20_000,
                    "shards={shards}: network failed to drain after the storm"
                );
            }
            sim.network().check_flow_conservation().unwrap();
        }
    }

    /// Per-router flit loads are consistent: elevator routers carry at
    /// least as much traffic as the network-wide mean under uniform load.
    #[test]
    fn elevator_routers_are_hotter_than_average(
        seed in 0u64..1000,
    ) {
        let mesh = Mesh3d::new(4, 4, 3).unwrap();
        let elevators = ElevatorSet::new(&mesh, [(1, 1), (2, 2)]).unwrap();
        let traffic = SyntheticTraffic::uniform(&mesh, 0.003, seed);
        let selector = ElevatorFirstSelector::new(&mesh, &elevators);
        let config = SimConfig::new(mesh, elevators.clone())
            .with_phases(200, 1500, 20_000)
            .with_seed(seed);
        let summary = Simulator::new(config, Box::new(traffic), Box::new(selector)).run().unwrap();

        let flags: Vec<bool> = mesh.coords().map(|c| elevators.is_elevator_router(c)).collect();
        let loads = summary.normalized_elevator_loads(&flags);
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        prop_assert!(mean > 1.0, "elevator routers should exceed the elevator-less mean, got {mean}");
    }
}

/// High-load soak: hotspot everything into one corner across layers and
/// make sure the watchdog stays silent (no deadlock) even though the run
/// saturates.
#[test]
fn saturating_hotspot_does_not_deadlock() {
    use noc_topology::NodeId;
    use noc_traffic::injection::{InjectionProcess, PacketSizeRange};
    use noc_traffic::pattern::Hotspot;

    let mesh = Mesh3d::new(4, 4, 2).unwrap();
    let elevators = ElevatorSet::new(&mesh, [(0, 0)]).unwrap();
    let pattern = Hotspot::new(mesh.node_count(), vec![NodeId(31)], 0.8);
    let traffic = SyntheticTraffic::new(
        mesh.node_count(),
        Box::new(pattern),
        InjectionProcess::bernoulli(0.05),
        PacketSizeRange::paper_default(),
        123,
    );
    let selector = ElevatorFirstSelector::new(&mesh, &elevators);
    let config = SimConfig::new(mesh, elevators)
        .with_phases(200, 2_000, 500)
        .with_seed(123);
    // `run` panics on deadlock; saturation (completed == false) is fine.
    let summary = Simulator::new(config, Box::new(traffic), Box::new(selector))
        .run()
        .unwrap();
    assert!(summary.injected_packets > 0);
}
