//! End-to-end pipeline test: offline AMOSA optimisation → subset
//! assignment → online AdEle selection → cycle-level simulation.

use adele::offline::{OfflineOptimizer, SelectionStrategy, SubsetAssignment};
use adele::online::AdeleSelector;
use amosa::AmosaParams;
use noc_sim::{SimConfig, Simulator};
use noc_topology::placement::Placement;
use noc_traffic::SyntheticTraffic;

fn quick_phases(config: SimConfig) -> SimConfig {
    config.with_phases(300, 1_200, 8_000)
}

#[test]
fn offline_to_online_pipeline_delivers_packets() {
    let (mesh, elevators) = Placement::Ps1.instantiate();
    let result = OfflineOptimizer::new(mesh, elevators.clone())
        .with_params(AmosaParams::fast(3))
        .optimize();
    assert!(
        !result.pareto.is_empty(),
        "offline stage must produce solutions"
    );

    let solution = result.select(SelectionStrategy::LatencyLeaning);
    solution
        .assignment
        .check_compatible(&mesh, &elevators)
        .expect("offline output matches its topology");

    let selector = AdeleSelector::from_solution(&mesh, &elevators, solution, 9);
    let traffic = SyntheticTraffic::uniform(&mesh, 0.002, 9);
    let config = quick_phases(SimConfig::new(mesh, elevators)).with_seed(9);
    let summary = Simulator::new(config, Box::new(traffic), Box::new(selector))
        .run()
        .unwrap();

    assert!(summary.completed, "light load must fully drain");
    assert!(summary.delivered_packets > 50, "expected real traffic");
    assert_eq!(summary.policy, "AdEle");
    // Every elevator sees some packets: the subsets spread traffic.
    assert!(
        summary.elevator_packets.iter().filter(|&&c| c > 0).count() >= 2,
        "offline subsets should use several elevators: {:?}",
        summary.elevator_packets
    );
}

#[test]
fn cached_assignment_text_round_trips_through_simulation() {
    let (mesh, elevators) = Placement::Ps1.instantiate();
    let result = OfflineOptimizer::new(mesh, elevators.clone())
        .with_params(AmosaParams::fast(5))
        .optimize();
    let original = &result.select(SelectionStrategy::Knee).assignment;

    // Serialise + parse (the harness's results/ cache format).
    let restored = SubsetAssignment::from_text(&original.to_text()).unwrap();
    assert_eq!(&restored, original);

    // Both must drive identical simulations.
    let run = |assignment: &SubsetAssignment| {
        let selector = AdeleSelector::from_assignment(
            &mesh,
            &elevators,
            assignment,
            adele::AdeleConfig::paper_default(),
            4,
        )
        .unwrap();
        let traffic = SyntheticTraffic::uniform(&mesh, 0.003, 4);
        let config = quick_phases(SimConfig::new(mesh, elevators.clone())).with_seed(4);
        Simulator::new(config, Box::new(traffic), Box::new(selector))
            .run()
            .unwrap()
    };
    assert_eq!(run(original), run(&restored));
}

#[test]
fn offline_traffic_awareness_shifts_subsets() {
    use noc_traffic::pattern::{BitPermutation, Permutation};
    use noc_traffic::TrafficMatrix;

    let (mesh, elevators) = Placement::Ps1.instantiate();
    let uniform = OfflineOptimizer::new(mesh, elevators.clone())
        .with_params(AmosaParams::fast(8))
        .optimize();
    let shuffle_matrix = TrafficMatrix::from_pattern(
        &Permutation::new(BitPermutation::Shuffle, mesh.node_count()),
        mesh.node_count(),
        0,
        0,
    );
    let shuffled = OfflineOptimizer::new(mesh, elevators)
        .with_params(AmosaParams::fast(8))
        .with_traffic(shuffle_matrix)
        .optimize();
    // Not a strict guarantee point-by-point, but the fronts should differ:
    // the optimiser reacts to the traffic matrix.
    let a = &uniform.select(SelectionStrategy::LatencyLeaning).assignment;
    let b = &shuffled
        .select(SelectionStrategy::LatencyLeaning)
        .assignment;
    assert_ne!(
        a, b,
        "traffic-aware optimisation should change the assignment"
    );
}
