//! Determinism of the flight recorder and robustness of the replay
//! oracle.
//!
//! The contract: a trace journal is a pure function of the scenario spec
//! on its deterministic fields — two recordings of the same spec agree
//! record for record, and a golden journal recorded at one shard count
//! verifies under replay at any other (`{1, 2, 8}` here). Damaged
//! journals — corrupted lines, truncation, a missing header — must fail
//! [`noc_exp::verify_trace`] with a [`noc_obs::TraceError`] naming the
//! offending record index, never a panic.

use noc_exp::{
    record_trace, record_trace_at, trace_period, verify_trace, Scenario, WorkloadKind, WorkloadSpec,
};
use noc_obs::{compare_journals, parse_journal, Record};
use noc_topology::{ElevatorSet, Mesh3d};
use proptest::prelude::*;

/// A random but valid tiny scenario with tracing enabled: mesh 2..=4 per
/// dimension, 1..=3 distinct elevator columns, either workload stream,
/// short windows so every proptest case replays in milliseconds.
fn arb_scenario() -> impl Strategy<Value = Scenario> {
    let topo = (2usize..=4, 2usize..=4, 2usize..=3).prop_flat_map(|(x, y, z)| {
        let columns = prop::collection::hash_set((0..x as u8, 0..y as u8), 1..=3)
            .prop_map(|set| set.into_iter().collect::<Vec<_>>());
        (Just(Mesh3d::new(x, y, z).unwrap()), columns)
    });
    (topo, 0.001f64..0.005, 0u64..1000, 0usize..2, 50u64..200).prop_map(
        |((mesh, columns), rate, seed, v2, period)| {
            let elevators = ElevatorSet::new(&mesh, columns).unwrap();
            let workload = if v2 == 1 {
                WorkloadSpec::v2(WorkloadKind::Uniform { rate })
            } else {
                WorkloadSpec::v1(WorkloadKind::Uniform { rate })
            };
            Scenario::new("trace-prop", mesh, elevators)
                .with_phases(100, 400, 2_000)
                .with_workload(workload)
                .with_seed(seed)
                .with_trace(period)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, ..ProptestConfig::default()
    })]

    /// Two recordings of the same spec agree on every deterministic
    /// field, in both comparison directions, with the same record count —
    /// and the journal verifies under replay at shard counts {1, 2, 8}.
    #[test]
    fn journals_are_deterministic_and_shard_independent(
        scenario in arb_scenario(),
    ) {
        let period = trace_period(&scenario);
        let a = record_trace(&scenario, period);
        let b = record_trace(&scenario, period);
        prop_assert_eq!(a.lines().count(), b.lines().count());
        let parsed_a = parse_journal(&a).expect("journal a parses");
        let parsed_b = parse_journal(&b).expect("journal b parses");
        compare_journals(&parsed_a, &parsed_b).expect("a vs b deterministic fields");
        compare_journals(&parsed_b, &parsed_a).expect("b vs a deterministic fields");

        for shards in [1usize, 2, 8] {
            let report = verify_trace(&a, Some(shards))
                .expect("golden journal verifies at every shard count");
            prop_assert_eq!(report.shards, shards);
            prop_assert_eq!(report.records, parsed_a.len());
        }
    }

    /// Corrupting any single line makes the journal fail to parse with
    /// exactly that record index — and `verify_trace` surfaces the same
    /// error instead of panicking.
    #[test]
    fn corrupted_journals_fail_with_the_record_index(
        scenario in arb_scenario(),
        pick in 0usize..1000,
    ) {
        let journal = record_trace(&scenario, trace_period(&scenario));
        let lines: Vec<&str> = journal.lines().collect();
        let victim = pick % lines.len();
        let corrupted: String = lines
            .iter()
            .enumerate()
            .map(|(i, line)| {
                if i == victim {
                    "{ not json at all".to_string()
                } else {
                    (*line).to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let err = parse_journal(&corrupted).expect_err("corruption must not parse");
        prop_assert_eq!(err.record, victim);
        let err = verify_trace(&corrupted, None).expect_err("verify must refuse, not panic");
        prop_assert_eq!(err.record, victim);
    }

    /// A cleanly truncated journal still parses, but verification fails
    /// at the cut: the fresh replay has records the golden lost.
    #[test]
    fn truncated_journals_fail_at_the_cut(
        scenario in arb_scenario(),
        drop in 1usize..4,
    ) {
        let journal = record_trace(&scenario, trace_period(&scenario));
        let lines: Vec<&str> = journal.lines().collect();
        // Keep at least the header so verification reaches the compare.
        let keep = lines.len().saturating_sub(drop).max(1);
        let truncated = lines[..keep].join("\n");
        let err = verify_trace(&truncated, None).expect_err("truncation must fail verification");
        prop_assert_eq!(err.record, keep, "error names the first missing record");
    }

    /// Version negotiation, fuzzed over the scenario space: a journal
    /// recorded at schema v1 (no `hist` records, percentile-free
    /// summary) verifies record for record under the v2 reader, which
    /// replays it at the golden's own schema.
    #[test]
    fn v1_journals_verify_under_the_v2_reader(
        scenario in arb_scenario(),
    ) {
        let v1 = record_trace_at(&scenario, trace_period(&scenario), 1);
        prop_assert!(!v1.contains("\"type\":\"hist\""), "v1 carries no hist records");
        prop_assert!(!v1.contains("latency_p99"), "v1 summaries carry no percentiles");
        let report = verify_trace(&v1, None).expect("v2 reader verifies v1 journals");
        prop_assert_eq!(report.schema, 1);
        for shards in [2usize, 8] {
            let report = verify_trace(&v1, Some(shards))
                .expect("v1 journals stay shard-independent under the v2 reader");
            prop_assert_eq!(report.schema, 1);
        }
    }
}

/// A tampered histogram payload (bucket counts no longer summing to the
/// recorded total) fails parsing — and verification — with exactly the
/// offending record's index, never a panic.
#[test]
fn corrupted_histogram_records_fail_with_the_record_index() {
    let mesh = Mesh3d::new(4, 4, 2).unwrap();
    let elevators = ElevatorSet::new(&mesh, [(0, 0), (3, 3)]).unwrap();
    let scenario = Scenario::new("hist-corruption", mesh, elevators)
        .with_phases(100, 400, 2_000)
        .with_workload(WorkloadKind::Uniform { rate: 0.004 })
        .with_seed(11)
        .with_trace(100);
    let journal = record_trace(&scenario, trace_period(&scenario));
    let lines: Vec<&str> = journal.lines().collect();
    let victim = lines
        .iter()
        .position(|l| l.contains("\"type\":\"hist\""))
        .expect("v2 journals carry hist records");
    let corrupted: String = lines
        .iter()
        .enumerate()
        .map(|(i, line)| {
            if i == victim {
                // Inflate the first histogram's total: counts stop
                // summing to it, which the payload validator rejects.
                line.replacen("\"total\":", "\"total\":9", 1)
            } else {
                (*line).to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    assert_ne!(corrupted, journal, "tampering must change the journal");

    let err = parse_journal(&corrupted).expect_err("corrupt histogram must not parse");
    assert_eq!(err.record, victim);
    assert!(err.message.contains("corrupt"), "unexpected message: {err}");

    let err = verify_trace(&corrupted, None).expect_err("verify must refuse, not panic");
    assert_eq!(err.record, victim);
}

/// A journal that does not begin with a header record is rejected at
/// record 0 — there is no spec to replay.
#[test]
fn headerless_journals_are_rejected_at_record_zero() {
    let headerless = r#"{"type":"phase","cycle":0,"phase":"warmup"}"#;
    let err = verify_trace(headerless, None).unwrap_err();
    assert_eq!(err.record, 0);
    assert!(err.message.contains("header"), "unexpected message: {err}");

    let empty = verify_trace("", None).unwrap_err();
    assert_eq!(empty.record, 0);
}

/// The golden journal's structure is what the schema promises: a header
/// first, phase markers for every lifecycle transition, periodic windows
/// and one final summary.
#[test]
fn journals_carry_the_schema_record_types() {
    let mesh = Mesh3d::new(4, 4, 2).unwrap();
    let elevators = ElevatorSet::new(&mesh, [(0, 0), (3, 3)]).unwrap();
    let scenario = Scenario::new("schema-shape", mesh, elevators)
        .with_phases(100, 400, 2_000)
        .with_workload(WorkloadKind::Uniform { rate: 0.004 })
        .with_seed(11)
        .with_trace(100);
    let journal = record_trace(&scenario, trace_period(&scenario));
    let records = parse_journal(&journal).unwrap();

    assert!(matches!(records[0], Record::Header { .. }));
    let phases: Vec<&str> = records
        .iter()
        .filter_map(|r| match r {
            Record::Phase { phase, .. } => Some(phase.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(phases, ["warmup", "measure", "drain", "done"]);
    let windows = records
        .iter()
        .filter(|r| matches!(r, Record::Window { .. }))
        .count();
    assert!(windows >= 4, "period 100 over 500+ cycles: got {windows}");
    assert!(matches!(records.last(), Some(Record::Summary { .. })));
}
