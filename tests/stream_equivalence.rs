//! The `v1` ↔ `v2` workload-stream contract.
//!
//! `v2` (event-driven batched injection) is a *different RNG stream* from
//! `v1` (per-node-per-cycle polling), so the two can never be compared
//! bit for bit. What this suite pins instead:
//!
//! * **Statistical equivalence** — per-node injected-packet counts and
//!   inter-arrival gap moments of a `v2` source match its `v1` twin
//!   within explicit binomial/geometric bounds (stated inline at each
//!   assertion: counts within 6 standard deviations of the two-stream
//!   difference distribution, gap moments within 5–15 %).
//! * **Determinism** — a `v2` run is bit-identical across repeats and
//!   across worker counts of the `noc_exp` pool.
//! * **Directives under batching** — mid-run `ScaleRate`/`SetHotspots`
//!   delivered to a `v2` source shift the measured rates/destinations as
//!   expected and preserve determinism (the calendar flush + resample
//!   path).

use noc_exp::{run_batch, Event, Scenario, StreamVersion, WorkloadKind, WorkloadSpec};
use noc_sim::{SimConfig, Simulator, TrafficInput};
use noc_topology::{Coord, ElevatorSet, Mesh3d, NodeId};
use noc_traffic::injection::OnOffParams;
use noc_traffic::{
    BatchedSynthetic, ScheduledInjection, ScheduledSource, SyntheticTraffic, TrafficSource,
};
use proptest::prelude::*;

fn mesh() -> Mesh3d {
    Mesh3d::new(4, 4, 4).unwrap()
}

/// Collects `(cycle, node, flits)` injection events from a polled source.
fn polled_events(source: &mut dyn TrafficSource, mesh: &Mesh3d, cycles: u64) -> Vec<(u64, u16)> {
    let mut events = Vec::new();
    for cycle in 0..cycles {
        for node in mesh.node_ids() {
            if source.maybe_inject(node, cycle).is_some() {
                events.push((cycle, node.0));
            }
        }
    }
    events
}

/// Collects injection events from a scheduled source in 64-cycle batches.
fn scheduled_events(source: &mut dyn ScheduledSource, cycles: u64) -> Vec<(u64, u16)> {
    let mut events = Vec::new();
    let mut at = 0;
    while at < cycles {
        let up_to = (at + 63).min(cycles - 1);
        for inj in source.next_injections(up_to) {
            events.push((inj.cycle, inj.node.0));
        }
        at = up_to + 1;
    }
    events
}

fn per_node_counts(events: &[(u64, u16)], nodes: usize) -> Vec<u64> {
    let mut counts = vec![0u64; nodes];
    for &(_, node) in events {
        counts[node as usize] += 1;
    }
    counts
}

/// Inter-arrival gaps per node, pooled across nodes.
fn gaps(events: &[(u64, u16)], nodes: usize) -> Vec<f64> {
    let mut last = vec![None::<u64>; nodes];
    let mut out = Vec::new();
    for &(cycle, node) in events {
        if let Some(prev) = last[node as usize] {
            out.push((cycle - prev) as f64);
        }
        last[node as usize] = Some(cycle);
    }
    out
}

fn mean_var(samples: &[f64]) -> (f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    (mean, var)
}

/// Per-node counts of two independent realisations of Bernoulli(C, p)
/// must agree within 6 standard deviations of their difference
/// (σ_diff = √(2·C·p·(1−p))); the network-wide total within 6σ of its own
/// difference distribution. These are the deviation bounds the `v2`
/// stream is accepted under.
fn assert_count_equivalence(rate: f64, cycles: u64, v1: &[u64], v2: &[u64], what: &str) {
    let sd_node = (2.0 * cycles as f64 * rate * (1.0 - rate)).sqrt();
    let bound_node = 6.0 * sd_node + 3.0; // +3 absolute slack for tiny rates
    for (node, (a, b)) in v1.iter().zip(v2).enumerate() {
        let diff = (*a as f64 - *b as f64).abs();
        assert!(
            diff <= bound_node,
            "{what}: node {node} counts {a} (v1) vs {b} (v2) differ by {diff} > 6σ+3 = {bound_node}"
        );
    }
    let (ta, tb) = (v1.iter().sum::<u64>() as f64, v2.iter().sum::<u64>() as f64);
    let sd_total = (v1.len() as f64).sqrt() * sd_node;
    assert!(
        (ta - tb).abs() <= 6.0 * sd_total + 3.0,
        "{what}: totals {ta} (v1) vs {tb} (v2) differ beyond 6σ = {}",
        6.0 * sd_total
    );
}

#[test]
fn uniform_per_node_counts_and_gaps_match_within_bounds() {
    let mesh = mesh();
    let (rate, cycles) = (0.02, 30_000);
    let v1 = polled_events(
        &mut SyntheticTraffic::uniform(&mesh, rate, 11),
        &mesh,
        cycles,
    );
    let v2 = scheduled_events(&mut BatchedSynthetic::uniform(&mesh, rate, 11), cycles);
    assert_count_equivalence(
        rate,
        cycles,
        &per_node_counts(&v1, 64),
        &per_node_counts(&v2, 64),
        "uniform",
    );

    // Inter-arrival distribution: geometric with mean 1/p and variance
    // (1-p)/p²; the two streams' pooled moments must agree with theory
    // within 5 % (mean) / 15 % (variance) and with each other within 7 %.
    let expect_mean = 1.0 / rate;
    let expect_var = (1.0 - rate) / (rate * rate);
    let (m1, var1) = mean_var(&gaps(&v1, 64));
    let (m2, var2) = mean_var(&gaps(&v2, 64));
    for (what, mean, var) in [("v1", m1, var1), ("v2", m2, var2)] {
        assert!(
            (mean - expect_mean).abs() < 0.05 * expect_mean,
            "{what} gap mean {mean} vs {expect_mean}"
        );
        assert!(
            (var - expect_var).abs() < 0.15 * expect_var,
            "{what} gap variance {var} vs {expect_var}"
        );
    }
    assert!((m1 - m2).abs() < 0.07 * expect_mean, "means {m1} vs {m2}");
}

#[test]
fn low_rate_counts_match_within_bounds() {
    // The sweep regime the scheduler exists for: rates where most nodes
    // are idle most cycles.
    let mesh = mesh();
    let (rate, cycles) = (0.0008, 200_000);
    let v1 = polled_events(
        &mut SyntheticTraffic::uniform(&mesh, rate, 5),
        &mesh,
        cycles,
    );
    let v2 = scheduled_events(&mut BatchedSynthetic::uniform(&mesh, rate, 5), cycles);
    assert_count_equivalence(
        rate,
        cycles,
        &per_node_counts(&v1, 64),
        &per_node_counts(&v2, 64),
        "low-rate uniform",
    );
}

#[test]
fn bursty_phase_aware_sampling_preserves_load_and_support() {
    let mesh = mesh();
    let (rate, cycles) = (0.03, 60_000);
    let params = OnOffParams::new(0.02, 0.005, 0.1);
    let v1 = polled_events(
        &mut SyntheticTraffic::bursty(&mesh, rate, params, 7),
        &mesh,
        cycles,
    );
    let v2 = scheduled_events(
        &mut BatchedSynthetic::bursty(&mesh, rate, params, 7),
        cycles,
    );
    // The on/off modulation inflates count variance beyond plain binomial
    // (long correlated phases), so the per-node bound widens: the
    // modulation factor is bounded by on_scale, giving σ ≤ √(2·C·p·s_on).
    let scale = params.on_scale();
    let sd = (2.0 * cycles as f64 * rate * scale).sqrt() * 2.0;
    let (c1, c2) = (per_node_counts(&v1, 64), per_node_counts(&v2, 64));
    for (node, (a, b)) in c1.iter().zip(&c2).enumerate() {
        let diff = (*a as f64 - *b as f64).abs();
        assert!(
            diff <= 6.0 * sd,
            "bursty node {node}: {a} vs {b} differ by {diff} > {}",
            6.0 * sd
        );
    }
    let (t1, t2) = (c1.iter().sum::<u64>() as f64, c2.iter().sum::<u64>() as f64);
    assert!(
        (t1 - t2).abs() < 0.05 * t1,
        "bursty totals {t1} vs {t2} differ beyond 5 %"
    );
}

#[test]
fn shuffle_and_per_layer_share_support_with_v1() {
    let mesh = mesh();
    // Shuffle: exactly the fixed points stay silent on both streams.
    let v1 = polled_events(
        &mut SyntheticTraffic::shuffle(&mesh, 0.05, 3),
        &mesh,
        20_000,
    );
    let v2 = scheduled_events(&mut BatchedSynthetic::shuffle(&mesh, 0.05, 3), 20_000);
    let silent = |events: &[(u64, u16)]| {
        let counts = per_node_counts(events, 64);
        (0..64u16)
            .filter(|&n| counts[n as usize] == 0)
            .collect::<Vec<_>>()
    };
    assert_eq!(silent(&v1), silent(&v2), "same shuffle fixed points");
    assert_count_equivalence(
        0.05,
        20_000,
        &per_node_counts(&v1, 64),
        &per_node_counts(&v2, 64),
        "shuffle (fixed points hold at count 0)",
    );

    // Per-layer: silent layers are silent on both streams.
    let rates = [0.0, 0.01, 0.0, 0.02];
    let mut v1 = SyntheticTraffic::per_layer(
        &mesh,
        Box::new(noc_traffic::pattern::Uniform::new(64)),
        &rates,
        noc_traffic::injection::PacketSizeRange::paper_default(),
        9,
    );
    let mut v2 = BatchedSynthetic::per_layer(
        &mesh,
        Box::new(noc_traffic::pattern::Uniform::new(64)),
        &rates,
        noc_traffic::injection::PacketSizeRange::paper_default(),
        9,
    );
    let e1 = polled_events(&mut v1, &mesh, 10_000);
    let e2 = scheduled_events(&mut v2, 10_000);
    for events in [&e1, &e2] {
        for &(_, node) in events.iter() {
            let z = mesh.coord(NodeId(node)).z as usize;
            assert!(rates[z] > 0.0, "a silent layer injected");
        }
    }
}

fn v2_scenario(seed: u64) -> Scenario {
    let mesh = Mesh3d::new(4, 4, 2).unwrap();
    let elevators = ElevatorSet::new(&mesh, [(0, 0), (3, 3)]).unwrap();
    Scenario::new("v2", mesh, elevators)
        .with_phases(200, 800, 4_000)
        .with_workload(WorkloadSpec::v2(WorkloadKind::Uniform { rate: 0.004 }))
        .with_seed(seed)
}

#[test]
fn v2_runs_are_bit_identical_across_repeats_and_worker_counts() {
    let a = v2_scenario(7).run().unwrap();
    let b = v2_scenario(7).run().unwrap();
    assert_eq!(a, b, "same seed, same v2 stream, same summary");
    assert!(a.summary.delivered_packets > 0);
    assert!(a.summary.completed);

    // Worker counts shard scenario batches, never perturb results.
    let batch: Vec<Scenario> = (0..6).map(|i| v2_scenario(100 + i)).collect();
    let one = run_batch(&batch, 1);
    for workers in [2, 4, 8] {
        assert_eq!(
            run_batch(&batch, workers),
            one,
            "{workers}-worker v2 batch must match the single-worker run"
        );
    }
}

/// The sharded engine on a `v2` stream: measured windows are
/// bit-identical across repeats at every shard count, and every shard
/// count reproduces the sequential window exactly (the batched calendar
/// hands injections to per-shard sources without perturbing the stream).
#[test]
fn v2_windows_are_bit_identical_at_every_shard_count() {
    let run = |shards: usize| {
        let mesh = Mesh3d::new(4, 4, 2).unwrap();
        let elevators = ElevatorSet::new(&mesh, [(0, 0), (3, 3)]).unwrap();
        let config = SimConfig::new(mesh, elevators.clone())
            .with_phases(200, 800, 4_000)
            .with_seed(11)
            .with_shards(shards);
        let input = TrafficInput::Scheduled(Box::new(BatchedSynthetic::uniform(&mesh, 0.004, 11)));
        let selector = adele::online::ElevatorFirstSelector::new(&mesh, &elevators);
        let mut sim = Simulator::from_input(config, input, Box::new(selector));
        sim.advance(200).unwrap();
        sim.measure_window(800).unwrap()
    };
    let sequential = run(1);
    assert!(sequential.delivered_packets > 0, "sanity: traffic flowed");
    for shards in [2usize, 4, 8] {
        let a = run(shards);
        assert_eq!(
            a,
            run(shards),
            "shards={shards} must repeat bit-identically"
        );
        assert_eq!(
            a, sequential,
            "shards={shards} must match the sequential window"
        );
    }
}

#[test]
fn v2_offered_load_matches_v1_in_a_full_simulation() {
    let base = v2_scenario(21);
    let v1 = base
        .clone()
        .with_stream(StreamVersion::V1)
        .run()
        .unwrap()
        .summary
        .injected_packets as f64;
    let v2 = base.run().unwrap().summary.injected_packets as f64;
    // 1000 injection cycles × 32 nodes × rate 0.004 ≈ 128 packets; 6σ of
    // the two-stream difference is √(2·n·p(1-p))·6 ≈ 96. Allow exactly
    // that.
    let sd = (2.0f64 * 1_000.0 * 32.0 * 0.004 * 0.996).sqrt();
    assert!(
        (v1 - v2).abs() <= 6.0 * sd,
        "injected {v1} (v1) vs {v2} (v2) differ beyond 6σ = {}",
        6.0 * sd
    );
}

#[test]
fn every_workload_kind_delivers_on_v2() {
    let kinds = [
        WorkloadKind::Uniform { rate: 0.004 },
        WorkloadKind::Shuffle { rate: 0.004 },
        WorkloadKind::Hotspot {
            rate: 0.004,
            hotspots: vec![Coord::new(1, 1, 1)],
            fraction: 0.4,
        },
        WorkloadKind::Bursty {
            rate: 0.004,
            params: OnOffParams::new(0.02, 0.005, 0.1),
        },
        WorkloadKind::PerLayer {
            rates: vec![0.006, 0.002],
        },
        WorkloadKind::Composite {
            parts: vec![
                (0.7, WorkloadKind::Uniform { rate: 0.004 }),
                (
                    0.3,
                    WorkloadKind::Bursty {
                        rate: 0.004,
                        params: OnOffParams::new(0.02, 0.005, 0.1),
                    },
                ),
            ],
        },
    ];
    for kind in kinds {
        let scenario = v2_scenario(3).with_workload(WorkloadSpec::v2(kind.clone()));
        let a = scenario.run().unwrap();
        assert!(
            a.summary.delivered_packets > 0,
            "{kind:?} must deliver on v2"
        );
        assert_eq!(
            a,
            scenario.run().unwrap(),
            "{kind:?} must stay deterministic"
        );
    }
}

/// A `v2` simulator driven directly (no scenario layer), for directive
/// tests that need windowed measurements.
fn v2_simulator(rate: f64, seed: u64) -> Simulator {
    let mesh = Mesh3d::new(4, 4, 2).unwrap();
    let elevators = ElevatorSet::new(&mesh, [(0, 0), (3, 3)]).unwrap();
    let config = SimConfig::new(mesh, elevators.clone())
        .with_phases(200, 800, 4_000)
        .with_seed(seed);
    let input = TrafficInput::Scheduled(Box::new(BatchedSynthetic::uniform(&mesh, rate, seed)));
    let selector = adele::online::ElevatorFirstSelector::new(&mesh, &elevators);
    Simulator::from_input(config, input, Box::new(selector))
}

proptest! {
    /// Mid-run `ScaleRate` on a batched source: the calendar flush +
    /// resample keeps determinism, and the measured rate shifts by the
    /// commanded factor (within 6σ binomial bounds per window).
    #[test]
    fn scale_rate_mid_run_shifts_v2_load(
        factor_idx in 0usize..4,
        seed in 0u64..30,
    ) {
        use noc_sim::SimCommand;
        let factor = [0.0, 0.5, 2.0, 3.0][factor_idx];
        let rate = 0.004;
        let window = 1_500u64;
        let run = || {
            let mut sim = v2_simulator(rate, seed);
            sim.advance(100).unwrap();
            let before = sim.measure_window(window).unwrap();
            sim.apply_command(&SimCommand::ScaleInjection { factor });
            let after = sim.measure_window(window).unwrap();
            (before, after)
        };
        let (before, after) = run();
        let (before2, after2) = run();
        prop_assert_eq!(&before, &before2, "pre-event window must reproduce");
        prop_assert_eq!(&after, &after2, "post-event window must reproduce");

        let expected = |r: f64| window as f64 * 32.0 * r;
        let sd = |r: f64| (window as f64 * 32.0 * r * (1.0 - r)).sqrt();
        prop_assert!(
            (before.injected_packets as f64 - expected(rate)).abs() <= 6.0 * sd(rate) + 3.0,
            "baseline window off: {} vs {}", before.injected_packets, expected(rate)
        );
        let scaled = rate * factor;
        prop_assert!(
            (after.injected_packets as f64 - expected(scaled)).abs() <= 6.0 * sd(scaled) + 3.0,
            "scaled window off: {} vs {} (factor {})",
            after.injected_packets, expected(scaled), factor
        );
    }

    /// Mid-run `SetHotspots` on a batched source: destinations re-aim at
    /// the hotspot, injection timing stays on-rate, determinism holds.
    #[test]
    fn set_hotspots_mid_run_redirects_v2_destinations(seed in 0u64..30) {
        use noc_sim::SimCommand;
        // An off-pillar hotspot, so the flit count measures re-aimed
        // destinations rather than elevator transit noise.
        let mesh = Mesh3d::new(4, 4, 2).unwrap();
        let hot = Coord::new(2, 1, 1);
        let hot_id = mesh.node_id(hot).unwrap();
        let run = || {
            let mut sim = v2_simulator(0.006, seed);
            sim.advance(100).unwrap();
            let before = sim.measure_window(1_200).unwrap();
            sim.apply_command(&SimCommand::ShiftHotspot {
                hotspots: vec![hot_id],
                fraction: 0.9,
            });
            let after = sim.measure_window(1_200).unwrap();
            (before, after)
        };
        let (before, after) = run();
        let (before2, after2) = run();
        prop_assert_eq!(&before, &before2);
        prop_assert_eq!(&after, &after2);
        prop_assert!(
            after.router_flits[hot_id.index()] > before.router_flits[hot_id.index()],
            "hotspot router must see more flits after the shift ({} vs {})",
            after.router_flits[hot_id.index()],
            before.router_flits[hot_id.index()]
        );
        // The shift changes destinations, not the offered load: the two
        // windows differ only by binomial noise (6σ of the two-window
        // difference, σ_diff = √(2·n·p·(1−p))).
        let (b, a) = (before.injected_packets as f64, after.injected_packets as f64);
        let sd_diff = (2.0 * 1_200.0 * 32.0 * 0.006 * 0.994f64).sqrt();
        prop_assert!((b - a).abs() <= 6.0 * sd_diff, "load moved: {b} vs {a}");
    }

    /// Scenario-layer events (the exp_engine harness) on a v2 workload:
    /// a scheduled burst raises the injected count, deterministically.
    #[test]
    fn burst_events_on_v2_scenarios_stay_deterministic(
        cycle in 0u64..600,
        seed in 0u64..20,
    ) {
        let base = v2_scenario(seed);
        let burst = base
            .clone()
            .with_event(Event::InjectionBurst { cycle, factor: 3.0 });
        let a = burst.run().unwrap();
        prop_assert_eq!(&a, &burst.run().unwrap(), "event runs must reproduce");
        let plain = base.run().unwrap();
        prop_assert!(
            a.summary.injected_packets > plain.summary.injected_packets,
            "a 3x burst must raise injections ({} vs {})",
            a.summary.injected_packets,
            plain.summary.injected_packets
        );
    }
}

/// The calendar prefetches up to 64 cycles ahead; injections already
/// handed to the simulator's calendar but not yet due must be flushed by
/// a directive, not delivered stale (the scheduler's core correctness
/// property under events).
#[test]
fn directive_silences_prefetched_cycles() {
    use noc_sim::SimCommand;
    let mut sim = v2_simulator(0.05, 3);
    sim.advance(10).unwrap(); // calendar has prefetched well past cycle 10
    sim.apply_command(&SimCommand::ScaleInjection { factor: 0.0 });
    let window = sim.measure_window(500).unwrap();
    assert_eq!(
        window.injected_packets, 0,
        "a zero-factor directive must silence prefetched injections too"
    );
}

#[test]
fn polled_adapter_keeps_composites_working_under_v2() {
    // Composite on v2 goes through the CyclePolled adapter: same offered
    // load as its v1 twin — here even the same stream, since the adapter
    // replays the polled call sequence exactly.
    let kind = WorkloadKind::Composite {
        parts: vec![
            (0.5, WorkloadKind::Uniform { rate: 0.004 }),
            (
                0.5,
                WorkloadKind::Hotspot {
                    rate: 0.004,
                    hotspots: vec![Coord::new(3, 3, 1)],
                    fraction: 0.8,
                },
            ),
        ],
    };
    let v1 = v2_scenario(9)
        .with_workload(WorkloadSpec::v1(kind.clone()))
        .run()
        .unwrap();
    let v2 = v2_scenario(9)
        .with_workload(WorkloadSpec::v2(kind))
        .run()
        .unwrap();
    assert_eq!(
        v1.summary, v2.summary,
        "the polled adapter replays the v1 stream verbatim"
    );
}

#[test]
fn scheduled_injection_structs_expose_their_fields() {
    // Regression guard for the public batch item shape.
    let mesh = mesh();
    let mut source = BatchedSynthetic::uniform(&mesh, 1.0, 1);
    let batch: Vec<ScheduledInjection> = source.next_injections(0).to_vec();
    assert_eq!(batch.len(), 64);
    assert!(batch.iter().all(|inj| inj.cycle == 0));
    assert!(batch.iter().all(|inj| inj.request.flits >= 10));
}
