//! Packet-slot recycling: generation-tagged handles never alias across
//! slot reuse, the simulator's memory stays bounded by in-flight packets,
//! and the steady-state hot path performs zero heap allocation.

use adele::online::ElevatorFirstSelector;
use noc_sim::{Packet, PacketId, PacketTable, SimConfig, Simulator};
use noc_topology::route::VirtualNet;
use noc_topology::{ElevatorSet, Mesh3d, NodeId};
use noc_traffic::SyntheticTraffic;
use proptest::prelude::*;
use std::collections::HashMap;

fn dummy_packet(tag: u64, measured: bool) -> Packet {
    Packet {
        src: NodeId(0),
        dst: NodeId(1),
        flits: 1,
        vnet: VirtualNet::Ascend,
        elevator: None,
        created: tag,
        head_out_src: None,
        tail_out_src: None,
        delivered: None,
        flits_delivered: 0,
        measured,
    }
}

proptest! {
    /// Model-based check of the table under random insert/retire traffic:
    /// a handle returned by `insert` stays unique forever — even when its
    /// slot is recycled arbitrarily often — and `is_live`/`get` always
    /// agree with a reference map.
    #[test]
    fn recycled_slots_never_alias(ops in prop::collection::vec(0u8..=255, 1..400)) {
        let mut table = PacketTable::new();
        let mut live: Vec<PacketId> = Vec::new();
        let mut model: HashMap<PacketId, u64> = HashMap::new();
        let mut ever_issued: Vec<PacketId> = Vec::new();
        let mut tag = 0u64;

        for op in ops {
            if op % 3 == 0 || live.is_empty() {
                tag += 1;
                let measured = op % 2 == 0;
                let id = table.insert(dummy_packet(tag, measured));
                // A fresh handle must differ from every handle ever issued,
                // including retired ones that shared its slot.
                prop_assert!(!ever_issued.contains(&id), "handle {id:?} reissued");
                ever_issued.push(id);
                live.push(id);
                model.insert(id, tag);
            } else {
                let victim = live.remove(op as usize % live.len());
                prop_assert!(table.is_live(victim));
                table.retire(victim);
                model.remove(&victim);
            }

            // The table and the model agree on liveness and contents.
            for id in &ever_issued {
                match model.get(id) {
                    Some(&t) => {
                        prop_assert!(table.is_live(*id));
                        prop_assert_eq!(table.get(*id).created, t);
                    }
                    None => prop_assert!(!table.is_live(*id)),
                }
            }
            prop_assert_eq!(table.live(), model.len());
            let expected_outstanding =
                model.keys().filter(|id| table.get(**id).measured).count();
            prop_assert_eq!(table.measured_outstanding(), expected_outstanding);
        }

        // Capacity is bounded by the liveness high-water mark, not by the
        // number of packets ever created.
        prop_assert!(table.capacity() <= ever_issued.len());
    }
}

fn quick_sim(rate: f64, seed: u64) -> Simulator {
    let mesh = Mesh3d::new(4, 4, 2).unwrap();
    let elevators = ElevatorSet::new(&mesh, [(0, 0), (3, 3)]).unwrap();
    let config = SimConfig::new(mesh, elevators.clone()).with_seed(seed);
    let traffic = SyntheticTraffic::uniform(&mesh, rate, seed);
    let selector = ElevatorFirstSelector::new(&mesh, &elevators);
    Simulator::new(config, Box::new(traffic), Box::new(selector))
}

/// Long runs stay bounded: after tens of thousands of cycles the packet
/// table holds only the in-flight high-water mark, orders of magnitude
/// below the number of packets created (the pre-refactor `Vec<Packet>`
/// grew by exactly `total_created`).
#[test]
fn packet_memory_is_bounded_by_in_flight() {
    let mut sim = quick_sim(0.004, 9);
    sim.advance(30_000).unwrap();
    let table = sim.packet_table();
    assert!(
        table.total_created() > 3_000,
        "sanity: the run must create plenty of packets ({})",
        table.total_created()
    );
    assert!(
        (table.capacity() as u64) < table.total_created() / 10,
        "slots must recycle: {} slots for {} packets",
        table.capacity(),
        table.total_created()
    );
    // Every queued packet is live, and liveness never exceeds the
    // allocated high-water mark.
    assert!(table.live() >= sim.network().queued_packets() as usize);
    assert!(table.live() <= table.capacity());
}

/// The zero-allocation contract of the arena core: once warm, stepping
/// grows nothing — the flit arena is fixed at construction and every
/// staging/worklist/source buffer has reached its high-water capacity.
#[test]
fn steady_state_stepping_allocates_nothing() {
    let mut sim = quick_sim(0.003, 17);
    // Warm-up: staging buffers and source queues reach their high water.
    sim.advance(4_000).unwrap();
    let footprint = sim.network().heap_footprint();
    let slots = sim.packet_table().capacity();
    sim.advance(10_000).unwrap();
    assert_eq!(
        sim.network().heap_footprint(),
        footprint,
        "network heap footprint grew during steady state"
    );
    assert_eq!(
        sim.packet_table().capacity(),
        slots,
        "packet slots grew during steady state"
    );
}
