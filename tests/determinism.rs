//! Reproducibility: identical seeds produce bit-identical results across
//! the whole stack (traffic, selection, simulation, offline search), and
//! different seeds genuinely change the stochastic components.

use adele::offline::{OfflineOptimizer, SelectionStrategy};
use adele_bench::{make_selector, Policy, Workload};
use amosa::AmosaParams;
use noc_sim::harness::run_once;
use noc_sim::SimConfig;
use noc_topology::placement::Placement;

fn run_full_stack(sim_seed: u64, traffic_seed: u64, amosa_seed: u64) -> noc_sim::RunSummary {
    let (mesh, elevators) = Placement::Ps1.instantiate();
    let offline = OfflineOptimizer::new(mesh, elevators.clone())
        .with_params(AmosaParams::fast(amosa_seed))
        .optimize();
    let assignment = &offline.select(SelectionStrategy::LatencyLeaning).assignment;
    let config = SimConfig::new(mesh, elevators.clone())
        .with_phases(300, 1_500, 10_000)
        .with_seed(sim_seed);
    run_once(
        &config,
        Workload::Uniform.build(&mesh, 0.003, traffic_seed),
        make_selector(Policy::Adele, &mesh, &elevators, Some(assignment), sim_seed),
    )
    .unwrap()
}

#[test]
fn identical_seeds_reproduce_bit_identical_summaries() {
    let a = run_full_stack(1, 2, 3);
    let b = run_full_stack(1, 2, 3);
    assert_eq!(a, b);
}

/// The sharded engine keeps the same contract at every shard count: each
/// `k` reproduces bit-identically across repeats, and — stronger — every
/// `k` reproduces the `k = 1` summary exactly, full stack (offline AMOSA
/// assignment, AdEle selection, simulation).
#[test]
fn every_shard_count_reproduces_the_sequential_summary() {
    let (mesh, elevators) = Placement::Ps1.instantiate();
    let offline = OfflineOptimizer::new(mesh, elevators.clone())
        .with_params(AmosaParams::fast(3))
        .optimize();
    let assignment = &offline.select(SelectionStrategy::LatencyLeaning).assignment;
    let run = |shards: usize| {
        let config = SimConfig::new(mesh, elevators.clone())
            .with_phases(300, 1_500, 10_000)
            .with_seed(1)
            .with_shards(shards);
        run_once(
            &config,
            Workload::Uniform.build(&mesh, 0.003, 2),
            make_selector(Policy::Adele, &mesh, &elevators, Some(assignment), 1),
        )
        .unwrap()
    };
    let sequential = run(1);
    assert_ne!(sequential.delivered_packets, 0, "sanity: packets flowed");
    for shards in [2usize, 4, 8] {
        let a = run(shards);
        let b = run(shards);
        assert_eq!(a, b, "shards={shards} must reproduce across repeats");
        assert_eq!(
            a, sequential,
            "shards={shards} must be bit-identical to the sequential engine"
        );
    }
}

#[test]
fn traffic_seed_changes_results() {
    let a = run_full_stack(1, 2, 3);
    let b = run_full_stack(1, 99, 3);
    assert_ne!(
        a.delivered_packets, 0,
        "sanity: the run must deliver packets"
    );
    assert!(
        a.avg_latency != b.avg_latency || a.delivered_packets != b.delivered_packets,
        "different traffic seeds should perturb results"
    );
}

#[test]
fn amosa_seed_changes_offline_search_but_stays_valid() {
    let (mesh, elevators) = Placement::Ps1.instantiate();
    let a = OfflineOptimizer::new(mesh, elevators.clone())
        .with_params(AmosaParams::fast(3))
        .optimize();
    let b = OfflineOptimizer::new(mesh, elevators.clone())
        .with_params(AmosaParams::fast(4))
        .optimize();
    for result in [&a, &b] {
        for point in &result.pareto {
            point
                .assignment
                .check_compatible(&mesh, &elevators)
                .expect("front stays valid for any seed");
        }
    }
    let objs = |r: &adele::offline::OfflineResult| -> Vec<(f64, f64)> {
        r.pareto
            .iter()
            .map(|p| (p.utilization_variance, p.average_distance))
            .collect()
    };
    assert_ne!(
        objs(&a),
        objs(&b),
        "different seeds should explore differently"
    );
}

#[test]
fn baseline_policies_are_seed_independent() {
    // ElevFirst and CDA carry no internal randomness: two different
    // selector seeds over identical traffic must agree exactly.
    let (mesh, elevators) = Placement::Ps1.instantiate();
    let config = || {
        SimConfig::new(mesh, elevators.clone())
            .with_phases(300, 1_500, 10_000)
            .with_seed(5)
    };
    for policy in [Policy::ElevFirst, Policy::Cda] {
        let a = run_once(
            &config(),
            Workload::Uniform.build(&mesh, 0.003, 8),
            make_selector(policy, &mesh, &elevators, None, 111),
        )
        .unwrap();
        let b = run_once(
            &config(),
            Workload::Uniform.build(&mesh, 0.003, 8),
            make_selector(policy, &mesh, &elevators, None, 222),
        )
        .unwrap();
        assert_eq!(
            a,
            b,
            "{} must not depend on the selector seed",
            policy.name()
        );
    }
}
