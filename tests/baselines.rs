//! Cross-policy ordering tests: the qualitative results the paper's
//! evaluation rests on must hold in this reproduction.

use adele::offline::SubsetAssignment;
use adele_bench::{make_selector, Policy, Workload};
use noc_sim::harness::run_once;
use noc_sim::SimConfig;
use noc_topology::placement::Placement;

/// Shared quick configuration: PS1 is the paper's most contended pattern.
fn config(seed: u64) -> SimConfig {
    let (mesh, elevators) = Placement::Ps1.instantiate();
    SimConfig::new(mesh, elevators)
        .with_phases(500, 3_000, 20_000)
        .with_seed(seed)
}

/// A balanced two-elevator-subset assignment for AdEle in tests (avoids
/// depending on an AMOSA run; the offline pipeline has its own test).
fn test_assignment() -> SubsetAssignment {
    let (mesh, elevators) = Placement::Ps1.instantiate();
    // Round-robin the three two-elevator subsets across routers: exactly
    // balanced in expectation, with redundancy for the online stage.
    let masks = (0..mesh.node_count())
        .map(|i| match i % 3 {
            0 => 0b011u64,
            1 => 0b101,
            _ => 0b110,
        })
        .collect();
    SubsetAssignment::from_masks(masks, elevators.len()).unwrap()
}

#[test]
fn adaptive_policies_beat_elevator_first_under_congestion() {
    let (mesh, elevators) = Placement::Ps1.instantiate();
    let assignment = test_assignment();
    let rate = 0.0045; // beyond ElevFirst's saturation, inside CDA/AdEle's
    let run = |policy: Policy| {
        run_once(
            &config(17),
            Workload::Uniform.build(&mesh, rate, 31),
            make_selector(policy, &mesh, &elevators, Some(&assignment), 7),
        )
        .unwrap()
    };
    let ef = run(Policy::ElevFirst);
    let cda = run(Policy::Cda);
    let adele = run(Policy::Adele);

    assert!(
        cda.avg_latency < ef.avg_latency * 0.75,
        "CDA ({:.1}) must clearly beat ElevFirst ({:.1})",
        cda.avg_latency,
        ef.avg_latency
    );
    assert!(
        adele.avg_latency < ef.avg_latency * 0.75,
        "AdEle ({:.1}) must clearly beat ElevFirst ({:.1})",
        adele.avg_latency,
        ef.avg_latency
    );
    assert!(
        adele.avg_latency < cda.avg_latency * 1.15,
        "AdEle ({:.1}) must at least stay in CDA's ({:.1}) ballpark",
        adele.avg_latency,
        cda.avg_latency
    );
}

#[test]
fn adele_balances_elevator_load_better_than_elevator_first() {
    let (mesh, elevators) = Placement::Ps1.instantiate();
    let assignment = test_assignment();
    let rate = 0.004;
    let spread = |policy: Policy| -> f64 {
        let summary = run_once(
            &config(19),
            Workload::Uniform.build(&mesh, rate, 37),
            make_selector(policy, &mesh, &elevators, Some(&assignment), 7),
        )
        .unwrap();
        let total: u64 = summary.elevator_packets.iter().sum();
        let max = *summary.elevator_packets.iter().max().unwrap();
        max as f64 / total.max(1) as f64
    };
    let ef = spread(Policy::ElevFirst);
    let adele = spread(Policy::Adele);
    assert!(
        adele < ef,
        "AdEle's max elevator share ({adele:.3}) must undercut ElevFirst's ({ef:.3})"
    );
    // With 3 elevators, AdEle should be near the ideal 1/3 share.
    assert!(adele < 0.45, "AdEle share {adele:.3} is too concentrated");
}

#[test]
fn low_load_energy_ranking_favours_adele() {
    let (mesh, elevators) = Placement::Ps1.instantiate();
    let assignment = test_assignment();
    let rate = 0.001; // the paper's Fig. 6 low-injection regime
    let energy = |policy: Policy| {
        run_once(
            &config(23),
            Workload::Uniform.build(&mesh, rate, 41),
            make_selector(policy, &mesh, &elevators, Some(&assignment), 7),
        )
        .unwrap()
        .energy_per_flit_nj
    };
    let ef = energy(Policy::ElevFirst);
    let adele = energy(Policy::Adele);
    // The minimal-path override makes AdEle the energy winner at low load.
    assert!(
        adele <= ef * 1.01,
        "AdEle energy ({adele:.1} nJ) must not exceed ElevFirst ({ef:.1} nJ) at low load"
    );
}

#[test]
fn adele_rr_is_a_valid_midpoint() {
    let (mesh, elevators) = Placement::Ps1.instantiate();
    let assignment = test_assignment();
    let rate = 0.005;
    let run = |policy: Policy| {
        run_once(
            &config(29),
            Workload::Uniform.build(&mesh, rate, 43),
            make_selector(policy, &mesh, &elevators, Some(&assignment), 7),
        )
        .unwrap()
    };
    let ef = run(Policy::ElevFirst);
    let rr = run(Policy::AdeleRr);
    assert!(
        rr.avg_latency < ef.avg_latency * 0.75,
        "even plain RR over subsets ({:.1}) must beat ElevFirst ({:.1})",
        rr.avg_latency,
        ef.avg_latency
    );
    assert_eq!(rr.policy, "AdEle-RR");
}
