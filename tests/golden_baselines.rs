//! Frozen full-summary baselines: three representative scenarios whose
//! complete `RunSummary` JSON is checked into `tests/golden/`. Any
//! engine change that perturbs a single counter, latency sum or
//! telemetry roll-up of these runs fails here with a field-level diff —
//! the operational definition of "the default path stays bit-identical".
//!
//! Regenerate (after an intentional behaviour change) with:
//! `GOLDEN_REGEN=1 cargo test --test golden_baselines`

use noc_exp::{Event, Scenario, SelectorSpec, StreamVersion, WorkloadKind};
use noc_topology::placement::Placement;
use noc_topology::{Coord, ElevatorId};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Runs `scenario` and compares its pretty-printed result JSON against
/// the checked-in golden file (or rewrites it under `GOLDEN_REGEN=1`).
fn check(scenario: &Scenario) {
    let result = scenario.run().unwrap();
    let json = serde_json::to_string_pretty(&result).expect("result serialises");
    let path = golden_dir().join(format!("{}.json", scenario.name));
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("golden dir");
        std::fs::write(&path, json + "\n").expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e} (run with GOLDEN_REGEN=1)",
            scenario.name
        )
    });
    assert_eq!(
        json.trim(),
        expected.trim(),
        "run of `{}` diverged from its golden baseline",
        scenario.name
    );
}

fn ps1() -> (noc_topology::Mesh3d, noc_topology::ElevatorSet) {
    Placement::Ps1.instantiate()
}

/// Elevator-First over the bit-stable polled `v1` stream.
#[test]
fn golden_elevfirst_v1() {
    let (mesh, elevators) = ps1();
    let scenario = Scenario::new("golden_elevfirst_v1", mesh, elevators)
        .with_workload(WorkloadKind::Uniform { rate: 0.004 })
        .with_selector(SelectorSpec::ElevatorFirst)
        .with_phases(300, 1_200, 8_000)
        .with_seed(17);
    check(&scenario);
}

/// AdEle over the batched `v2` stream with a mid-run pillar failure and
/// recovery (exercises selection feedback, events and the scheduler).
#[test]
fn golden_adele_v2_fail_recover() {
    let (mesh, elevators) = ps1();
    let scenario = Scenario::new("golden_adele_v2_fail_recover", mesh, elevators)
        .with_workload(WorkloadKind::Uniform { rate: 0.004 })
        .with_stream(StreamVersion::V2)
        .with_selector(SelectorSpec::adele())
        .with_phases(300, 1_200, 8_000)
        .with_seed(29)
        .with_event(Event::ElevatorFail {
            cycle: 500,
            elevator: ElevatorId(0),
        })
        .with_event(Event::ElevatorRecover {
            cycle: 900,
            elevator: ElevatorId(0),
        });
    check(&scenario);
}

/// CDA under a transpose-flavoured hotspot shift (exercises traffic
/// directives and the congestion probe).
#[test]
fn golden_cda_hotspot() {
    let (mesh, elevators) = ps1();
    let scenario = Scenario::new("golden_cda_hotspot", mesh, elevators)
        .with_workload(WorkloadKind::Hotspot {
            rate: 0.004,
            hotspots: vec![Coord::new(3, 3, 1)],
            fraction: 0.5,
        })
        .with_selector(SelectorSpec::Cda)
        .with_phases(300, 1_200, 8_000)
        .with_seed(41)
        .with_event(Event::InjectionBurst {
            cycle: 700,
            factor: 1.5,
        });
    check(&scenario);
}
