//! The scenario engine end to end: the parallel runner is bit-identical
//! to the sequential harness, scenario batches preserve order and
//! determinism, and a mid-run `ElevatorFail` event demonstrably changes
//! AdEle's selection.

use adele::online::{ElevatorFirstSelector, ElevatorSelector};
use noc_exp::runner::{par_injection_sweep, run_batch};
use noc_exp::{Event, Scenario, SelectorSpec, WorkloadKind};
use noc_sim::harness::injection_sweep;
use noc_sim::SimConfig;
use noc_topology::{Coord, ElevatorId, ElevatorSet, Mesh3d};
use noc_traffic::{SyntheticTraffic, TrafficSource};

fn tiny_topology() -> (Mesh3d, ElevatorSet) {
    let mesh = Mesh3d::new(4, 4, 2).unwrap();
    let elevators = ElevatorSet::new(&mesh, [(0, 0), (3, 3)]).unwrap();
    (mesh, elevators)
}

/// The acceptance contract of the parallel runner: for a fixed seed, the
/// sweep output equals the sequential `injection_sweep` output exactly —
/// every `SweepPoint`, bit for bit — for any worker count.
#[test]
fn parallel_sweep_is_bit_identical_to_sequential() {
    let (mesh, elevators) = tiny_topology();
    let config = SimConfig::new(mesh, elevators.clone())
        .with_phases(150, 600, 3_000)
        .with_seed(5);
    let rates: Vec<f64> = (1..=8).map(|i| 0.004 * f64::from(i) / 8.0).collect();
    let traffic = |rate: f64| -> Box<dyn TrafficSource> {
        Box::new(SyntheticTraffic::uniform(&mesh, rate, 5))
    };
    let selector =
        || -> Box<dyn ElevatorSelector> { Box::new(ElevatorFirstSelector::new(&mesh, &elevators)) };

    let sequential = injection_sweep(&config, &rates, &traffic, &selector);
    for threads in [1, 2, 4, 8] {
        let parallel = par_injection_sweep(&config, &rates, &traffic, &selector, threads);
        assert_eq!(
            parallel, sequential,
            "{threads}-thread sweep must match the sequential output exactly"
        );
    }
}

#[test]
fn scenario_batch_preserves_order_and_determinism() {
    let (mesh, elevators) = tiny_topology();
    let scenarios: Vec<Scenario> = (0u32..5)
        .map(|i| {
            Scenario::new(format!("point-{i}"), mesh, elevators.clone())
                .with_phases(100, 400, 2_000)
                .with_workload(WorkloadKind::Uniform {
                    rate: 0.001 + 0.001 * f64::from(i),
                })
                .with_seed(7)
        })
        .collect();
    let a = run_batch(&scenarios, 4);
    let b = run_batch(&scenarios, 2);
    assert_eq!(a, b, "worker count must never change results");
    for (i, result) in a.iter().enumerate() {
        assert_eq!(result.name, format!("point-{i}"), "input order preserved");
    }
}

/// The acceptance contract of the event hooks: failing an elevator
/// mid-run changes AdEle's selection — the victim stops being picked the
/// moment the event fires, and the run still completes on the survivor.
#[test]
fn elevator_fail_event_changes_adele_selection_mid_run() {
    let (mesh, elevators) = tiny_topology();
    let victim = ElevatorId(1);
    let base = Scenario::new("fault", mesh, elevators)
        .with_workload(WorkloadKind::Uniform { rate: 0.004 })
        .with_selector(SelectorSpec::adele())
        .with_phases(200, 1_000, 6_000)
        .with_seed(11);

    let healthy = base.clone().run().unwrap();
    assert!(
        healthy.summary.elevator_packets[victim.index()] > 0,
        "sanity: the victim carries load while healthy"
    );

    // Fail the victim halfway through the measurement window: picks up to
    // that cycle are free to use it, picks after it must not.
    let fail_at = 200 + 500;
    let failed = base
        .clone()
        .with_event(Event::ElevatorFail {
            cycle: fail_at,
            elevator: victim,
        })
        .run()
        .unwrap();
    assert_ne!(
        healthy.summary, failed.summary,
        "the failure must perturb the run"
    );
    assert!(
        failed.summary.elevator_packets[victim.index()]
            < healthy.summary.elevator_packets[victim.index()],
        "selection must shift off the victim after the event ({} vs {})",
        failed.summary.elevator_packets[victim.index()],
        healthy.summary.elevator_packets[victim.index()]
    );
    assert!(
        failed.summary.elevator_packets[0] > 0,
        "the survivor carries the diverted load"
    );
    assert!(failed.summary.completed, "the run must still drain");

    // Failing at the very start of measurement: the victim gets nothing.
    let failed_from_start = base
        .with_event(Event::ElevatorFail {
            cycle: 0,
            elevator: victim,
        })
        .run()
        .unwrap();
    assert_eq!(
        failed_from_start.summary.elevator_packets[victim.index()],
        0,
        "no measured packet may pick a pillar that died before warm-up"
    );
}

/// Composite and per-layer workloads flow through the whole engine.
#[test]
fn composed_workloads_run_through_the_engine() {
    let (mesh, elevators) = tiny_topology();
    let composite = Scenario::new("hotspot+bursty", mesh, elevators.clone())
        .with_phases(150, 600, 3_000)
        .with_workload(WorkloadKind::Composite {
            parts: vec![
                (
                    0.6,
                    WorkloadKind::Hotspot {
                        rate: 0.004,
                        hotspots: vec![Coord::new(3, 3, 1)],
                        fraction: 0.5,
                    },
                ),
                (
                    0.4,
                    WorkloadKind::Bursty {
                        rate: 0.004,
                        params: noc_traffic::injection::OnOffParams::new(0.02, 0.005, 0.1),
                    },
                ),
            ],
        })
        .with_seed(3);
    let layered = Scenario::new("layer-skew", mesh, elevators)
        .with_phases(150, 600, 3_000)
        .with_workload(WorkloadKind::PerLayer {
            rates: vec![0.006, 0.001],
        })
        .with_seed(3);

    let results = run_batch(&[composite, layered], 2);
    assert_eq!(results.len(), 2);
    assert_eq!(results[0].summary.workload, "composite");
    for r in &results {
        assert!(r.summary.delivered_packets > 0, "{} must deliver", r.name);
        assert!(r.summary.completed);
    }
}
