//! Robustness suite: rigged deadlocks surface as *structured*,
//! exactly-diagnosable [`SimError`]s — never panics — with diagnostics
//! that are invariant across shard layouts and worker counts, and a
//! dead point never perturbs its neighbours' numbers.
//!
//! Natural deadlocks cannot occur in this engine (Elevator-First routing
//! is deadlock-free and ejection always drains), so every test here uses
//! the chaos harness's rig: an injection burst fills the fabric, a
//! [`Event::FabricFreeze`] wedges it solid, and an adversarially tiny
//! watchdog converts the wedge into [`SimError::Deadlock`] on demand.

use noc_exp::{run_batch_supervised, Event, PointError, Scenario, Supervision, WorkloadKind};
use noc_sim::SimError;
use noc_topology::{ElevatorSet, Mesh3d};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// A small healthy scenario on the 4×4×2 mesh.
fn healthy(name: &str, seed: u64, rate: f64) -> Scenario {
    let mesh = Mesh3d::new(4, 4, 2).expect("dimensions are valid");
    let elevators = ElevatorSet::new(&mesh, [(0, 0), (3, 3)]).expect("pillars fit");
    Scenario::new(name, mesh, elevators)
        .with_phases(100, 600, 2_500)
        .with_workload(WorkloadKind::Uniform { rate })
        .with_seed(seed)
}

/// The same scenario rigged to wedge: burst-fill the fabric, freeze it
/// for far longer than the tightened watchdog tolerates.
fn rigged(name: &str, seed: u64, rate: f64, shards: usize) -> Scenario {
    healthy(name, seed, rate)
        .with_event(Event::InjectionBurst {
            cycle: 0,
            factor: 25.0,
        })
        .with_event(Event::FabricFreeze {
            cycle: 40,
            cycles: 10_000,
        })
        .with_watchdog(32)
        .with_shards(shards)
}

/// The deadlock diagnostics a run surfaced, or a test failure if it did
/// anything else (completed, stalled, or panicked — panics would abort
/// the test process itself, which is exactly what must never happen).
fn deadlock_diag(scenario: &Scenario) -> Result<(u64, u64, u64), TestCaseError> {
    match scenario.run() {
        Err(SimError::Deadlock {
            cycle,
            last_progress,
            watchdog,
            buffered,
            state_digest,
            ..
        }) => {
            prop_assert_eq!(watchdog, 32, "the rig's watchdog is reported verbatim");
            prop_assert!(buffered > 0, "the watchdog only fires on a loaded fabric");
            prop_assert!(
                cycle - last_progress > watchdog,
                "cycle {} / last progress {} must straddle the watchdog",
                cycle,
                last_progress
            );
            Ok((cycle, last_progress, state_digest))
        }
        Ok(r) => Err(TestCaseError::fail(format!(
            "rigged run completed ({} packets) instead of deadlocking",
            r.summary.delivered_packets
        ))),
        Err(other) => Err(TestCaseError::fail(format!(
            "rigged run surfaced {other} instead of a deadlock"
        ))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// Satellite (c), first half: at every shard layout the rig produces
    /// `SimError::Deadlock` — never a panic — and the *exact-cycle*
    /// diagnostics (fire cycle, last progress, state digest) are
    /// bit-identical across layouts, the same invariance the lockstep
    /// equivalence suite proves for healthy runs.
    #[test]
    fn rigged_deadlocks_are_structured_and_shard_invariant(
        seed in 0u64..1_000,
        rate in 0.002f64..0.01,
    ) {
        let mut seen = Vec::new();
        for shards in [1usize, 2, 8] {
            let scenario = rigged("rig", seed, rate, shards);
            seen.push(deadlock_diag(&scenario)?);
        }
        prop_assert_eq!(seen[0], seen[1], "shards=1 vs shards=2");
        prop_assert_eq!(seen[1], seen[2], "shards=2 vs shards=8");
    }

    /// Satellite (c), second half: the same rig run through the
    /// *supervised pool* at worker counts 1 and 3 ends as a structured
    /// `PointError::Sim(Deadlock)` outcome — one strike, no retry, no
    /// panic — with diagnostics identical to the direct runs at every
    /// shard count × worker count combination.
    #[test]
    fn supervised_deadlock_diagnostics_are_worker_invariant(seed in 0u64..500) {
        let rate = 0.004;
        let scenarios: Vec<Scenario> = [1usize, 2, 8]
            .iter()
            .map(|&k| rigged(&format!("rig-k{k}"), seed, rate, k))
            .collect();
        let direct = deadlock_diag(&scenarios[0])?;
        for threads in [1usize, 3] {
            let outcomes =
                run_batch_supervised(&scenarios, threads, &Supervision::new(), None, |_| {});
            prop_assert_eq!(outcomes.len(), scenarios.len());
            for outcome in &outcomes {
                let failure = outcome.failure().ok_or_else(|| {
                    TestCaseError::fail("rigged point completed under supervision")
                })?;
                prop_assert_eq!(failure.attempts, 1, "deterministic: one strike");
                match &failure.error {
                    PointError::Sim(SimError::Deadlock {
                        cycle,
                        last_progress,
                        state_digest,
                        ..
                    }) => {
                        prop_assert_eq!(
                            (*cycle, *last_progress, *state_digest),
                            direct,
                            "threads={} must not change the diagnostics",
                            threads
                        );
                    }
                    other => {
                        return Err(TestCaseError::fail(format!(
                            "expected a structured deadlock, got {other}"
                        )))
                    }
                }
            }
        }
    }

    /// A deadlocked point leaves its neighbours bit-identical: the
    /// healthy points of a supervised batch containing a rigged point
    /// match standalone unsupervised runs field for field.
    #[test]
    fn a_deadlocked_point_leaves_neighbours_bit_identical(seed in 0u64..500) {
        let batch = vec![
            healthy("left", seed, 0.004),
            rigged("middle", seed.wrapping_add(1), 0.004, 2),
            healthy("right", seed.wrapping_add(2), 0.005),
        ];
        let outcomes = run_batch_supervised(&batch, 2, &Supervision::new(), None, |_| {});
        prop_assert!(outcomes[1].failure().is_some(), "the rigged point died");
        for index in [0usize, 2] {
            let standalone = batch[index].run().map_err(|e| {
                TestCaseError::fail(format!("healthy neighbour failed: {e}"))
            })?;
            prop_assert_eq!(
                outcomes[index].result(),
                Some(&standalone),
                "neighbour {} must be bit-identical to its standalone run",
                index
            );
        }
    }
}

/// The structured error also travels: a deadlock's serialized form keeps
/// the exact-cycle diagnostics, so a failed point in a ledger or trace
/// names the wedge precisely.
#[test]
fn deadlock_reports_survive_serialization() {
    let scenario = rigged("rig", 7, 0.004, 1);
    let error = scenario.run().expect_err("rigged to deadlock");
    let text = format!("{error}");
    assert!(text.contains("deadlock at cycle"), "{text}");
    assert!(text.contains("state digest"), "{text}");
    let SimError::Deadlock { cycle, .. } = error else {
        panic!("expected a deadlock, got {error}");
    };
    assert!(
        text.contains(&format!("deadlock at cycle {cycle}")),
        "the report names the firing cycle: {text}"
    );
}
