//! Lockstep equivalence for the sharded stepping engine.
//!
//! The contract under test: a `k`-shard run is a *bit-identical* function
//! of `(config, seed)` alone — the shard count (and the worker count the
//! pool happens to use) never leaks into results. The suite pins this the
//! strongest way available: two simulators built from the same config but
//! different shard counts are stepped in lockstep and their committed
//! network state is compared digest-for-digest **every cycle**, across
//! random meshes and loads × {ElevFirst, CDA, AdEle} × random mid-run
//! elevator fail/recover × {v1, v2} workload streams. Whole-run
//! [`RunSummary`] equality then covers the statistics/energy paths on top
//! of the raw network state.

use adele::offline::{OfflineOptimizer, SelectionStrategy};
use adele_bench::{make_selector, Policy};
use amosa::AmosaParams;
use noc_sim::{RunSummary, SimCommand, SimConfig, Simulator, TrafficInput};
use noc_topology::{ElevatorId, ElevatorSet, Mesh3d};
use noc_traffic::{BatchedSynthetic, SyntheticTraffic};
use proptest::prelude::*;

/// Builds a random but valid PC-3DNoC: mesh 2..=4 per dimension, 1..=4
/// distinct elevator columns (the same generator as the network
/// invariants suite).
fn arb_topology() -> impl Strategy<Value = (Mesh3d, Vec<(u8, u8)>)> {
    (2usize..=4, 2usize..=4, 2usize..=3).prop_flat_map(|(x, y, z)| {
        let columns = prop::collection::hash_set((0..x as u8, 0..y as u8), 1..=4)
            .prop_map(|set| set.into_iter().collect::<Vec<_>>());
        (Just(Mesh3d::new(x, y, z).unwrap()), columns)
    })
}

const POLICIES: [Policy; 3] = [Policy::ElevFirst, Policy::Cda, Policy::Adele];

/// Everything that parameterises one equivalence scenario. One instance
/// builds *many* simulators (one per shard count, plus repeats) that must
/// all agree bit for bit.
struct Case {
    mesh: Mesh3d,
    elevators: ElevatorSet,
    policy: Policy,
    v2: bool,
    rate: f64,
    seed: u64,
    fail_at: u64,
    recover_after: u64,
}

impl Case {
    /// Builds the simulator for `shards`, with the case's fail/recover
    /// pair already scheduled. AdEle runs from a deterministic offline
    /// assignment (same seed for every shard count, so the selector
    /// stream is identical by construction).
    fn build(&self, shards: usize) -> Simulator {
        let config = SimConfig::new(self.mesh, self.elevators.clone())
            .with_phases(100, 500, 20_000)
            .with_seed(self.seed)
            .with_shards(shards);
        let input = if self.v2 {
            TrafficInput::Scheduled(Box::new(BatchedSynthetic::uniform(
                &self.mesh, self.rate, self.seed,
            )))
        } else {
            TrafficInput::Polled(Box::new(SyntheticTraffic::uniform(
                &self.mesh, self.rate, self.seed,
            )))
        };
        let assignment = (self.policy == Policy::Adele).then(|| {
            OfflineOptimizer::new(self.mesh, self.elevators.clone())
                .with_params(AmosaParams::fast(self.seed))
                .optimize()
                .select(SelectionStrategy::LatencyLeaning)
                .assignment
                .clone()
        });
        let selector = make_selector(
            self.policy,
            &self.mesh,
            &self.elevators,
            assignment.as_ref(),
            self.seed,
        );
        let mut sim = Simulator::from_input(config, input, selector);
        let victim = ElevatorId((self.seed % self.elevators.len() as u64) as u8);
        sim.schedule_command(self.fail_at, SimCommand::FailElevator(victim));
        sim.schedule_command(
            self.fail_at + self.recover_after,
            SimCommand::RecoverElevator(victim),
        );
        sim
    }

    /// Steps a `k`-shard simulator against the sequential engine for
    /// `cycles`, requiring digest equality at **every** cycle boundary
    /// (and flow conservation on both, sampled).
    fn assert_lockstep(&self, k: usize, cycles: u64) -> Result<(), TestCaseError> {
        let mut seq = self.build(1);
        let mut sharded = self.build(k);
        for cycle in 0..cycles {
            seq.step().unwrap();
            sharded.step().unwrap();
            prop_assert_eq!(
                sharded.network().state_digest(),
                seq.network().state_digest(),
                "cycle {}: k={} diverged from the sequential engine \
                 ({:?}, v2={}, seed={})",
                cycle,
                k,
                self.policy,
                self.v2,
                self.seed
            );
            if cycle % 97 == 0 {
                for (label, sim) in [("k=1", &seq), ("sharded", &sharded)] {
                    if let Err(e) = sim.network().check_flow_conservation() {
                        return Err(TestCaseError::fail(format!(
                            "cycle {cycle}: {label} (k={k}) broke conservation: {e}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Full `run()` at `shards`, exercising warm-up, the measurement
    /// window, the drain phase and the summary assembly.
    fn run(&self, shards: usize) -> RunSummary {
        self.build(shards).run().unwrap()
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, ..ProptestConfig::default()
    })]

    /// The tentpole claim, cycle by cycle: for k ∈ {2, 4, 8} the sharded
    /// engine's committed state digest tracks the k = 1 engine at every
    /// cycle boundary, through the warm-up, a mid-run elevator failure
    /// and its recovery, on both workload streams and all three policies.
    #[test]
    fn sharded_state_tracks_sequential_every_cycle(
        (mesh, columns) in arb_topology(),
        rate in 0.0005f64..0.004,
        seed in 0u64..1000,
        policy_idx in 0usize..3,
        v2 in 0usize..2,
        fail_at in 0u64..600,
        recover_after in 1u64..400,
    ) {
        let case = Case {
            mesh,
            elevators: ElevatorSet::new(&mesh, columns).unwrap(),
            policy: POLICIES[policy_idx],
            v2: v2 == 1,
            rate,
            seed,
            fail_at,
            recover_after,
        };
        for k in [2usize, 4, 8] {
            case.assert_lockstep(k, 1_000)?;
        }
    }

    /// Whole-run equality: the same scenarios driven through `run()`
    /// (warm-up + window + drain + watchdog + summary assembly) produce a
    /// `RunSummary` that is equal field-for-field at every shard count —
    /// latencies, throughput, per-router loads, per-pillar energy, all of
    /// it.
    #[test]
    fn run_summaries_are_identical_at_every_shard_count(
        (mesh, columns) in arb_topology(),
        rate in 0.0005f64..0.004,
        seed in 0u64..1000,
        policy_idx in 0usize..3,
        v2 in 0usize..2,
        fail_at in 0u64..600,
        recover_after in 1u64..400,
    ) {
        let case = Case {
            mesh,
            elevators: ElevatorSet::new(&mesh, columns).unwrap(),
            policy: POLICIES[policy_idx],
            v2: v2 == 1,
            rate,
            seed,
            fail_at,
            recover_after,
        };
        let sequential = case.run(1);
        for k in [2usize, 4, 8] {
            let sharded = case.run(k);
            prop_assert_eq!(
                &sharded, &sequential,
                "k={} summary diverged ({:?}, v2={}, seed={})",
                k, case.policy, case.v2, case.seed
            );
        }
    }
}

/// The thread-pool execution path. On this suite's default environment
/// the pool may never be built (`worker_threads()` can resolve to 1), so
/// this test forces a multi-worker pool via `NOC_THREADS` and pins the
/// pooled path against the sequential engine, digest-for-digest and
/// summary-for-summary. The override only selects the execution path —
/// results are shard- and worker-count-independent by construction, so
/// leaking the variable to concurrently running tests cannot change any
/// outcome (that independence is exactly what this suite proves).
#[test]
fn pooled_execution_is_bit_identical_to_sequential() {
    let mesh = Mesh3d::new(4, 4, 3).unwrap();
    let case = Case {
        mesh,
        elevators: ElevatorSet::new(&mesh, [(0, 0), (3, 3), (1, 2)]).unwrap(),
        policy: Policy::ElevFirst,
        v2: true,
        rate: 0.003,
        seed: 42,
        fail_at: 250,
        recover_after: 200,
    };
    std::env::set_var("NOC_THREADS", "3");
    let mut seq = case.build(1);
    let mut pooled = case.build(6); // 6 shards on 3 workers: 2 each
    for cycle in 0..1_500u64 {
        seq.step().unwrap();
        pooled.step().unwrap();
        assert_eq!(
            pooled.network().state_digest(),
            seq.network().state_digest(),
            "cycle {cycle}: pooled execution diverged"
        );
    }
    let summary_seq = case.run(1);
    let summary_pooled = case.run(6);
    std::env::remove_var("NOC_THREADS");
    assert_eq!(summary_pooled, summary_seq);
    assert!(summary_seq.delivered_packets > 0, "sanity: traffic flowed");
}

/// Shard-count edge cases resolve deterministically: `shards: 0` means
/// "auto" (worker-count-sized, still bit-identical), and a request beyond
/// the router count clamps instead of panicking.
#[test]
fn degenerate_shard_counts_clamp_and_stay_identical() {
    let mesh = Mesh3d::new(2, 2, 2).unwrap();
    let case = Case {
        mesh,
        elevators: ElevatorSet::new(&mesh, [(0, 0)]).unwrap(),
        policy: Policy::Cda,
        v2: false,
        rate: 0.004,
        seed: 9,
        fail_at: 100,
        recover_after: 50,
    };
    let sequential = case.run(1);
    for k in [0usize, 7, 8, 64, 10_000] {
        assert_eq!(
            case.run(k),
            sequential,
            "shards={k} must clamp to the router count and stay identical"
        );
    }
}
