//! A/B equivalence of the arena-based simulator core against the
//! preserved pre-refactor reference core (`noc_sim::reference`): on random
//! meshes, loads, seeds and mid-run fail/recover events, the two cores
//! must agree **per cycle** (buffered flits, queued packets after every
//! step) and **per run** (bit-identical `RunSummary`, including latency
//! accumulators, per-router loads, energy counters and per-pillar
//! telemetry). Deleted together with the reference module once the arena
//! core is proven.

use adele::offline::SubsetAssignment;
use adele::online::{AdeleSelector, CdaSelector, ElevatorFirstSelector, ElevatorSelector};
use adele::AdeleConfig;
use noc_sim::reference::RefSimulator;
use noc_sim::{SimCommand, SimConfig, Simulator};
use noc_topology::{ElevatorId, ElevatorSet, Mesh3d};
use noc_traffic::SyntheticTraffic;
use proptest::prelude::*;

/// Builds a random but valid PC-3DNoC: mesh 2..=4 per dimension, 1..=4
/// distinct elevator columns.
fn arb_topology() -> impl Strategy<Value = (Mesh3d, Vec<(u8, u8)>)> {
    (2usize..=4, 2usize..=4, 2usize..=3).prop_flat_map(|(x, y, z)| {
        let columns = prop::collection::hash_set((0..x as u8, 0..y as u8), 1..=4)
            .prop_map(|set| set.into_iter().collect::<Vec<_>>());
        (Just(Mesh3d::new(x, y, z).unwrap()), columns)
    })
}

fn make_selector(
    kind: usize,
    mesh: &Mesh3d,
    elevators: &ElevatorSet,
    seed: u64,
) -> Box<dyn ElevatorSelector> {
    match kind {
        0 => Box::new(ElevatorFirstSelector::new(mesh, elevators)),
        1 => Box::new(CdaSelector::new()),
        _ => {
            let assignment = SubsetAssignment::full(mesh, elevators);
            Box::new(
                AdeleSelector::from_assignment(
                    mesh,
                    elevators,
                    &assignment,
                    AdeleConfig::paper_default(),
                    seed,
                )
                .expect("full assignment always matches"),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10, ..ProptestConfig::default()
    })]

    /// Lockstep and end-to-end equality across random topologies, loads,
    /// selection policies and a mid-run elevator fail/recover pair.
    #[test]
    fn arena_core_matches_reference_core(
        (mesh, columns) in arb_topology(),
        rate in 0.0005f64..0.006,
        seed in 0u64..1000,
        selector_kind in 0usize..3,
        fail_at in 0u64..400,
        recover_after in 1u64..300,
    ) {
        let elevators = ElevatorSet::new(&mesh, columns).unwrap();
        let config = SimConfig::new(mesh, elevators.clone())
            .with_phases(150, 600, 5_000)
            .with_seed(seed);
        let traffic = || Box::new(SyntheticTraffic::uniform(&mesh, rate, seed));
        let selector = || make_selector(selector_kind, &mesh, &elevators, seed);
        let events = [
            (fail_at, SimCommand::FailElevator(ElevatorId(0))),
            (fail_at + recover_after, SimCommand::RecoverElevator(ElevatorId(0))),
        ];

        // Per-cycle lockstep: the observable network state must agree
        // after every single step (slot recycling, the worklist and the
        // flat FIFOs change *nothing* about what moves when).
        let mut arena = Simulator::new(config.clone(), traffic(), selector());
        let mut reference = RefSimulator::new(config.clone(), traffic(), selector());
        for (at, command) in &events {
            arena.schedule_command(*at, command.clone());
            reference.schedule_command(*at, command.clone());
        }
        for cycle in 0..800u64 {
            arena.step();
            reference.step();
            prop_assert_eq!(
                arena.network().buffered_flits(),
                reference.buffered_flits(),
                "buffered flits diverged at cycle {}",
                cycle
            );
            prop_assert_eq!(
                arena.network().queued_packets(),
                reference.queued_packets(),
                "queued packets diverged at cycle {}",
                cycle
            );
        }

        // End-to-end: warm-up → measurement → drain summaries must be
        // bit-identical (stats, energy, per-link telemetry roll-ups).
        let mut arena = Simulator::new(config.clone(), traffic(), selector());
        let mut reference = RefSimulator::new(config, traffic(), selector());
        for (at, command) in &events {
            arena.schedule_command(*at, command.clone());
            reference.schedule_command(*at, command.clone());
        }
        prop_assert_eq!(arena.run(), reference.run());
    }
}
