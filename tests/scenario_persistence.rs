//! Scenario persistence: experiment specs serialise to JSON and parse
//! back losslessly (the first step of keeping experiment suites in
//! checked-in spec files), and a parsed scenario runs **bit-identically**
//! to the original.

use adele::offline::SubsetAssignment;
use noc_exp::{
    results_to_json, Event, Scenario, SelectorSpec, StreamVersion, WorkloadKind, WorkloadSpec,
};
use noc_topology::{Coord, ElevatorId, ElevatorSet, Mesh3d};
use noc_traffic::injection::OnOffParams;

fn topology() -> (Mesh3d, ElevatorSet) {
    let mesh = Mesh3d::new(4, 4, 2).unwrap();
    let elevators = ElevatorSet::new(&mesh, [(0, 0), (3, 3)]).unwrap();
    (mesh, elevators)
}

/// A scenario exercising every corner of the spec surface: a composite
/// workload nesting three sub-specs, an explicit offline assignment, and
/// one event of every kind.
fn kitchen_sink() -> Scenario {
    let (mesh, elevators) = topology();
    let assignment = SubsetAssignment::nearest(&mesh, &elevators);
    Scenario::new("kitchen-sink", mesh, elevators)
        .with_phases(150, 600, 3_000)
        .with_seed(99)
        .with_workload(WorkloadKind::Composite {
            parts: vec![
                (
                    0.5,
                    WorkloadKind::Hotspot {
                        rate: 0.004,
                        hotspots: vec![Coord::new(3, 3, 1), Coord::new(0, 0, 0)],
                        fraction: 0.4,
                    },
                ),
                (
                    0.3,
                    WorkloadKind::Bursty {
                        rate: 0.003,
                        params: OnOffParams::new(0.02, 0.005, 0.1),
                    },
                ),
                (
                    0.2,
                    WorkloadKind::PerLayer {
                        rates: vec![0.006, 0.001],
                    },
                ),
            ],
        })
        .with_selector(SelectorSpec::Adele {
            rr_only: false,
            measured_energy: false,
            assignment: Some(assignment),
        })
        .with_event(Event::ElevatorFail {
            cycle: 300,
            elevator: ElevatorId(1),
        })
        .with_event(Event::ElevatorRecover {
            cycle: 500,
            elevator: ElevatorId(1),
        })
        .with_event(Event::InjectionBurst {
            cycle: 400,
            factor: 2.0,
        })
        .with_event(Event::HotspotShift {
            cycle: 450,
            hotspots: vec![Coord::new(1, 1, 0)],
            fraction: 0.7,
        })
}

#[test]
fn scenario_json_round_trip_is_lossless() {
    let original = kitchen_sink();
    let json = serde_json::to_string_pretty(&original).unwrap();
    let parsed: Scenario = serde_json::from_str(&json).unwrap();
    assert_eq!(parsed, original);
    // The compact form round-trips too.
    let compact = serde_json::to_string(&original).unwrap();
    assert_eq!(
        serde_json::from_str::<Scenario>(&compact).unwrap(),
        original
    );
}

#[test]
fn parsed_scenario_runs_bit_identically() {
    let original = kitchen_sink();
    let json = serde_json::to_string(&original).unwrap();
    let parsed: Scenario = serde_json::from_str(&json).unwrap();
    assert_eq!(parsed.run().unwrap(), original.run().unwrap());
}

#[test]
fn every_workload_and_selector_spec_round_trips() {
    let workloads = [
        WorkloadKind::Uniform { rate: 0.003 },
        WorkloadKind::Shuffle { rate: 0.004 },
        WorkloadKind::Hotspot {
            rate: 0.002,
            hotspots: vec![Coord::new(2, 2, 1)],
            fraction: 0.25,
        },
        WorkloadKind::Bursty {
            rate: 0.005,
            params: OnOffParams::new(0.01, 0.01, 0.2),
        },
        WorkloadKind::PerLayer {
            rates: vec![0.001, 0.002],
        },
    ];
    for kind in workloads {
        // Both streams round-trip; a bare kind parses as the default v1.
        for spec in [WorkloadSpec::v1(kind.clone()), WorkloadSpec::v2(kind)] {
            let json = serde_json::to_string(&spec).unwrap();
            assert_eq!(serde_json::from_str::<WorkloadSpec>(&json).unwrap(), spec);
            if spec.stream == StreamVersion::V1 {
                assert!(
                    !json.contains("stream"),
                    "v1 keeps the pre-versioning format: {json}"
                );
            } else {
                assert!(json.contains("\"stream\":\"v2\""), "{json}");
            }
        }
    }
    let selectors = [
        SelectorSpec::ElevatorFirst,
        SelectorSpec::Cda,
        SelectorSpec::adele(),
        SelectorSpec::adele_measured_energy(),
        SelectorSpec::Adele {
            rr_only: true,
            measured_energy: false,
            assignment: None,
        },
    ];
    for spec in selectors {
        let json = serde_json::to_string(&spec).unwrap();
        assert_eq!(serde_json::from_str::<SelectorSpec>(&json).unwrap(), spec);
    }
    // Unit variants use the externally tagged string form.
    assert_eq!(
        serde_json::to_string(&SelectorSpec::Cda).unwrap(),
        "\"Cda\""
    );
}

/// Cross-field inconsistencies — pieces that parse fine in isolation but
/// disagree with each other — are parse errors, not deep-run panics.
#[test]
fn cross_field_inconsistencies_fail_at_parse_time() {
    let base = kitchen_sink();
    let json = serde_json::to_string(&base).unwrap();

    // Elevators built for a different (wider) mesh.
    let foreign_elevators = json.replace(
        "\"mesh_x\":4,\"nodes_per_layer\":16",
        "\"mesh_x\":8,\"nodes_per_layer\":64",
    );
    assert_ne!(foreign_elevators, json, "replacement must hit");
    let err = serde_json::from_str::<Scenario>(&foreign_elevators).unwrap_err();
    assert!(err.to_string().contains("elevator set"), "{err}");

    // An event naming an elevator the set does not have.
    let bad_event = json.replace(
        "{\"ElevatorFail\":{\"cycle\":300,\"elevator\":1}}",
        "{\"ElevatorFail\":{\"cycle\":300,\"elevator\":7}}",
    );
    assert_ne!(bad_event, json, "replacement must hit");
    let err = serde_json::from_str::<Scenario>(&bad_event).unwrap_err();
    assert!(err.to_string().contains("elevator"), "{err}");

    // A per-layer rate list that does not match the layer count.
    let bad_layers = json.replace(
        "{\"PerLayer\":{\"rates\":[0.006,0.001]}}",
        "{\"PerLayer\":{\"rates\":[0.006]}}",
    );
    assert_ne!(bad_layers, json, "replacement must hit");
    let err = serde_json::from_str::<Scenario>(&bad_layers).unwrap_err();
    assert!(err.to_string().contains("per-layer"), "{err}");

    // An assignment sized for a different mesh.
    let (mesh, elevators) = topology();
    let mut wrong = Scenario::new("wrong", mesh, elevators);
    wrong.selector = SelectorSpec::Adele {
        rr_only: false,
        measured_energy: false,
        assignment: Some(SubsetAssignment::from_masks(vec![1; 5], 2).unwrap()),
    };
    let err =
        serde_json::from_str::<Scenario>(&serde_json::to_string(&wrong).unwrap()).unwrap_err();
    assert!(err.to_string().contains("assignment"), "{err}");

    // And the validator is callable directly on constructed scenarios.
    assert!(base.validate().is_ok());
    assert!(wrong.validate().is_err());
}

/// The `shards` field grew after the spec format shipped: pre-existing
/// spec files (no `shards` key) must keep parsing — as sequential — while
/// a malformed value still errors, the field round-trips, and a sharded
/// scenario runs bit-identically to its sequential twin through the
/// scenario layer.
#[test]
fn shards_field_defaults_round_trips_and_never_changes_results() {
    let original = kitchen_sink();
    let json = serde_json::to_string(&original).unwrap();
    assert!(json.contains("\"shards\":1"), "{json}");

    // A pre-shards document: strip the field entirely.
    let legacy = json.replace(",\"shards\":1", "");
    assert_ne!(legacy, json, "replacement must hit");
    let parsed: Scenario = serde_json::from_str(&legacy).unwrap();
    assert_eq!(parsed.shards, 1, "absent field means sequential");
    assert_eq!(parsed, original);

    // Present but malformed is an error, not a silent default.
    let bad = json.replace("\"shards\":1", "\"shards\":\"many\"");
    let err = serde_json::from_str::<Scenario>(&bad).unwrap_err();
    assert!(err.to_string().contains("shards"), "{err}");

    // A non-default count round-trips and cannot perturb results.
    let sharded = original.clone().with_shards(4);
    let round: Scenario = serde_json::from_str(&serde_json::to_string(&sharded).unwrap()).unwrap();
    assert_eq!(round, sharded);
    assert_eq!(
        sharded.run().unwrap().summary,
        original.run().unwrap().summary,
        "shard count is a wall-clock knob, never a results knob"
    );
}

#[test]
fn measured_energy_selector_enables_the_feedback_period() {
    let (mesh, elevators) = topology();
    let base = Scenario::new("periods", mesh, elevators);
    assert_eq!(
        base.sim_config().energy_feedback_period,
        0,
        "default policies pay nothing for telemetry pushes"
    );
    let measured = base.with_selector(SelectorSpec::adele_measured_energy());
    assert_eq!(
        measured.sim_config().energy_feedback_period,
        noc_sim::SimConfig::MEASURED_ENERGY_FEEDBACK_PERIOD,
        "the measured-energy selector opts in automatically"
    );
}

#[test]
fn malformed_specs_are_rejected_with_errors() {
    // Unknown variant tag.
    assert!(serde_json::from_str::<WorkloadSpec>(r#"{"Gaussian": {"rate": 0.1}}"#).is_err());
    assert!(serde_json::from_str::<SelectorSpec>("\"Oracle\"").is_err());
    // Missing field inside a variant body.
    assert!(serde_json::from_str::<WorkloadSpec>(r#"{"Uniform": {}}"#).is_err());
    // Domain validation still applies through the spec boundary.
    assert!(serde_json::from_str::<WorkloadSpec>(
        r#"{"Bursty": {"rate": 0.003,
            "params": {"on_to_off": 2.0, "off_to_on": 0.1, "off_scale": 0.5}}}"#
    )
    .is_err());
}

#[test]
fn results_dump_carries_pillar_telemetry() {
    let (mesh, elevators) = topology();
    let scenario = Scenario::new("dump", mesh, elevators)
        .with_phases(100, 400, 2_000)
        .with_workload(WorkloadKind::Uniform { rate: 0.004 })
        .with_seed(5);
    let results = vec![scenario.run().unwrap()];
    let json = results_to_json(&results);
    assert!(json.contains("\"name\": \"dump\""));
    assert!(json.contains("\"pillar_energy_nj\""));
    assert!(json.contains("\"pillar_tsv_flits\""));
    assert!(json.contains("\"energy_per_flit_nj\""));
    // The dump is valid JSON for the parser half of the codec.
    let value: serde::Value = serde_json::from_str(&json).unwrap();
    let serde::Value::Array(items) = value else {
        panic!("dump must be a JSON array");
    };
    assert_eq!(items.len(), 1);
}

/// The checked-in `specs/` suite (step 2 of the scenario-spec roadmap
/// item): every file parses and cross-validates, the suite loads in
/// filename order, each scenario is named after its file, and one spec of
/// each family is present.
#[test]
fn checked_in_spec_suite_loads_and_validates() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("specs");
    let suite = noc_exp::load_dir(&dir).expect("checked-in specs must parse");
    let names: Vec<&str> = suite.iter().map(|(stem, _)| stem.as_str()).collect();
    assert_eq!(
        names,
        [
            "baseline",
            "baseline_v2",
            "elevator_fail",
            "hotspot_shift",
            "measured_energy"
        ],
        "canonical suite drifted; regenerate with `run_specs --emit specs`"
    );
    for (stem, scenario) in &suite {
        assert_eq!(&scenario.name, stem, "scenario name must match its file");
        scenario.validate().expect("parsed specs are valid");
    }
    // The v2 spec really selects the batched stream (and the baseline
    // stays on the default v1); the fault spec really carries mid-run
    // events; the telemetry spec really opts into measured energy.
    assert_eq!(suite[0].1.workload.stream, StreamVersion::V1);
    assert_eq!(suite[1].1.workload.stream, StreamVersion::V2);
    assert_eq!(
        suite[0].1.workload.kind, suite[1].1.workload.kind,
        "the v2 baseline offers the same load as the v1 baseline"
    );
    assert_eq!(suite[2].1.events.len(), 2);
    assert!(matches!(
        suite[4].1.selector,
        SelectorSpec::Adele {
            measured_energy: true,
            ..
        }
    ));
}
