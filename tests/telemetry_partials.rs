//! The sharded-telemetry merge invariant (the flight-recorder PR's audit
//! pin).
//!
//! In the sharded engine each shard accumulates router-flit, energy and
//! link-ledger counters into *partial* partitions that are folded into
//! the aggregate ledgers with an add-and-zero merge. The audited
//! invariant: every engine path folds the partials before any reader
//! needs an aggregate, and because the merge is add-and-zero it is
//! **idempotent at any moment** — a mid-window [`Simulator::fold_telemetry`]
//! (plus reads of the ledgers it exposes) can never change what a later
//! window, summary or energy-feedback push observes. These tests pin that
//! invariant so a future refactor that makes the merge non-idempotent or
//! leaves partials unfolded fails loudly.

use noc_exp::{Scenario, SelectorSpec, WorkloadKind};
use noc_topology::placement::Placement;

fn measured_energy_scenario(shards: usize) -> Scenario {
    Scenario::from_placement("telemetry-partials", Placement::Ps1)
        .with_phases(300, 1_200, 8_000)
        .with_workload(WorkloadKind::Uniform { rate: 0.003 })
        .with_selector(SelectorSpec::adele_measured_energy())
        .with_seed(17)
        .with_shards(shards)
}

/// Interleaving explicit mid-window folds (and ledger reads) into a
/// sharded run changes nothing: the measurement-window summary and the
/// committed network state stay bit-identical to an undisturbed run.
#[test]
fn mid_window_folds_are_invisible_to_the_summary() {
    let scenario = measured_energy_scenario(4);
    let mut disturbed = scenario.build_simulator();
    let mut reference = scenario.build_simulator();

    // Warm-up with folds and reads sprinkled between every few cycles.
    let mut tsv_snapshots = Vec::new();
    for _ in 0..6 {
        disturbed.advance(50).unwrap();
        disturbed.fold_telemetry();
        assert!(
            disturbed.telemetry_partials_clear(),
            "fold_telemetry must leave no partial counters behind"
        );
        // Reads of the folded aggregates — the mid-window observation the
        // audit is about. They must see fully-merged counters (monotone
        // TSV traversals, never a partially-merged regression).
        let tsv = disturbed.energy_ledger().vertical_hops;
        if let Some(&last) = tsv_snapshots.last() {
            assert!(tsv >= last, "mid-window TSV count went backwards");
        }
        tsv_snapshots.push(tsv);
        let _ = disturbed.link_ledger();
        // A second, immediate fold is a no-op (add-and-zero idempotence).
        disturbed.fold_telemetry();
    }
    reference.advance(300).unwrap();
    assert_eq!(
        disturbed.network().state_digest(),
        reference.network().state_digest(),
        "folds changed committed network state"
    );

    let summary_disturbed = disturbed.measure_window(1_200).unwrap();
    let summary_reference = reference.measure_window(1_200).unwrap();
    assert_eq!(
        summary_disturbed, summary_reference,
        "mid-window folds leaked into the window summary"
    );
    assert!(
        summary_reference.delivered_packets > 0,
        "sanity: traffic flowed"
    );
    // The window close folded everything; no partials survive it.
    assert!(disturbed.telemetry_partials_clear());
    assert!(reference.telemetry_partials_clear());
}

/// The full scenario path (warm-up + window + drain + summary), on the
/// telemetry-consuming measured-energy selector, is shard-independent —
/// so the partials the selector's feedback pushes read are always fully
/// merged regardless of layout.
#[test]
fn measured_energy_results_are_shard_independent() {
    let sequential = measured_energy_scenario(1).run().unwrap();
    for shards in [2usize, 4] {
        let sharded = measured_energy_scenario(shards).run().unwrap();
        assert_eq!(
            sharded, sequential,
            "k={shards} measured-energy run diverged from k=1"
        );
    }
}
