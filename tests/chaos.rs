//! Chaos-injection integration suite — the PR's acceptance criterion in
//! test form: a supervised batch seeded with worker panics and an
//! induced deadlock still completes every other point, in input order,
//! bit-identical to an undisturbed run; and a sweep killed mid-write
//! (torn ledger tail) resumes to byte-identical merged results,
//! re-running only the points the ledger never sealed.

use noc_exp::{
    run_batch_supervised, spec_hash, BatchEvent, ChaosSpec, Ledger, PointOutcome, Scenario,
    Supervision, WorkloadKind,
};
use noc_topology::{ElevatorSet, Mesh3d};
use std::sync::Mutex;

fn healthy(name: &str, seed: u64) -> Scenario {
    let mesh = Mesh3d::new(4, 4, 2).expect("dimensions are valid");
    let elevators = ElevatorSet::new(&mesh, [(0, 0), (3, 3)]).expect("pillars fit");
    Scenario::new(name, mesh, elevators)
        .with_phases(100, 500, 2_500)
        .with_workload(WorkloadKind::Uniform { rate: 0.004 })
        .with_seed(seed)
}

/// A batch of six healthy points, index 2 rigged to deadlock via the
/// chaos harness's own rig (the acceptance batch: one induced deadlock,
/// chaos panics layered on top by the supervisor).
fn acceptance_batch() -> Vec<Scenario> {
    (0..6u64)
        .map(|i| {
            let scenario = healthy(&format!("point-{i}"), 90 + i);
            if i == 2 {
                ChaosSpec::new(0).rig_deadlock(&scenario)
            } else {
                scenario
            }
        })
        .collect()
}

/// The PR's acceptance criterion: one chaos-injected panic plus one
/// induced deadlock, and every other point completes in input order,
/// bit-identical to an undisturbed run.
#[test]
fn panics_and_deadlocks_never_take_the_batch() {
    let scenarios = acceptance_batch();
    // Chaos panics are probabilistic but seeded, so the test derives the
    // strike list from the spec itself instead of hard-coding indices.
    let chaos = ChaosSpec::new(11).with_panics(0.4);
    let panicked: Vec<bool> = (0..scenarios.len()).map(|i| chaos.panics(i, 1)).collect();
    assert!(
        panicked.iter().any(|&p| p),
        "seed must curse at least one point"
    );
    assert!(
        panicked.iter().enumerate().any(|(i, &p)| !p && i != 2),
        "seed must leave at least one healthy survivor"
    );

    let outcomes = run_batch_supervised(
        &scenarios,
        3,
        &Supervision::new().with_chaos(chaos),
        None,
        |_| {},
    );

    assert_eq!(outcomes.len(), scenarios.len(), "the pool never aborts");
    for (i, outcome) in outcomes.iter().enumerate() {
        if panicked[i] {
            // The panic fires before the run, so it wins even on the
            // rigged point.
            let failure = outcome.failure().expect("cursed point");
            assert_eq!(failure.error.kind(), "panic");
        } else if i == 2 {
            let failure = outcome.failure().expect("rigged point");
            assert_eq!(failure.error.kind(), "deadlock");
        } else {
            // Survivors come back in input order, bit-identical to an
            // undisturbed standalone run.
            let result = outcome.result().expect("healthy survivor");
            assert_eq!(result.name, scenarios[i].name, "input order preserved");
            assert_eq!(
                result,
                &scenarios[i].run().unwrap(),
                "survivor {i} must be bit-identical"
            );
        }
    }
}

/// With retries armed, transient chaos panics recover (the strike window
/// closes after attempt 1) and the recovered results are bit-identical —
/// while the induced deadlock, being deterministic, still fails on one
/// strike.
#[test]
fn retries_recover_transient_panics_but_not_deadlocks() {
    let scenarios = acceptance_batch();
    let chaos = ChaosSpec::new(5).with_panics(1.0); // every point panics on attempt 1
    let outcomes = run_batch_supervised(
        &scenarios,
        2,
        &Supervision::new().with_retries(1).with_chaos(chaos),
        None,
        |_| {},
    );
    for (i, outcome) in outcomes.iter().enumerate() {
        if i == 2 {
            let failure = outcome.failure().expect("deadlocks are not retried");
            assert_eq!(failure.error.kind(), "deadlock");
            assert_eq!(failure.attempts, 2, "attempt 1 panicked, attempt 2 wedged");
        } else {
            assert_eq!(
                outcome.result(),
                Some(&scenarios[i].run().unwrap()),
                "retried point {i} recovers bit-identically"
            );
        }
    }
}

/// Crash-safety end to end, in process: run a supervised sweep that
/// records completions into the ledger (exactly as `run_specs` wires
/// it), tear the ledger's tail mid-record as a SIGKILL would, then
/// resume — only the unsealed points re-run, and the merged outcomes are
/// bit-identical to the uninterrupted pass.
#[test]
fn torn_ledger_resume_is_bit_identical() {
    let dir = std::env::temp_dir().join(format!("noc_chaos_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ledger.jsonl");
    let scenarios: Vec<Scenario> = (0..5u64)
        .map(|i| healthy(&format!("p{i}"), 70 + i))
        .collect();

    // Uninterrupted pass, recording every completion like run_specs does.
    let full = {
        let recorder = Mutex::new(Ledger::open(&path).unwrap());
        run_batch_supervised(&scenarios, 2, &Supervision::new(), None, |event| {
            if let BatchEvent::Finished {
                index,
                outcome: PointOutcome::Ok(result),
                ..
            } = event
            {
                let mut ledger = recorder.lock().unwrap();
                ledger
                    .record(spec_hash(&scenarios[*index]), result)
                    .unwrap();
            }
        })
    };
    assert!(full.iter().all(PointOutcome::is_ok), "healthy batch");

    // Simulate the kill: keep two sealed records and half of a third —
    // a torn tail with no terminating newline.
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 5);
    let torn = format!(
        "{}\n{}\n{}",
        lines[0],
        lines[1],
        &lines[2][..lines[2].len() / 2]
    );
    std::fs::write(&path, torn).unwrap();

    // Resume: the torn line is tolerated (and counted), the two sealed
    // points restore from the ledger, the other three re-run.
    let ledger = Ledger::open(&path).unwrap();
    assert_eq!(ledger.torn_lines(), 1, "the torn tail is quarantined");
    assert_eq!(ledger.len(), 2, "two sealed records survive");
    let started = Mutex::new(Vec::new());
    let cached = Mutex::new(Vec::new());
    let resumed = run_batch_supervised(
        &scenarios,
        2,
        &Supervision::new(),
        Some(&ledger),
        |event| match event {
            BatchEvent::Started { index, .. } => started.lock().unwrap().push(*index),
            BatchEvent::Cached { index, .. } => cached.lock().unwrap().push(*index),
            BatchEvent::Finished { .. } => {}
        },
    );

    let mut sealed: Vec<usize> = lines[..2]
        .iter()
        .map(|line| {
            scenarios
                .iter()
                .position(|s| line.contains(&format!("{:016x}", spec_hash(s))))
                .expect("sealed record names a batch point")
        })
        .collect();
    sealed.sort_unstable();
    let mut started = started.into_inner().unwrap();
    started.sort_unstable();
    let mut expected: Vec<usize> = (0..scenarios.len())
        .filter(|i| !sealed.contains(i))
        .collect();
    expected.sort_unstable();
    assert_eq!(started, expected, "only unsealed points re-ran");
    let mut cached = cached.into_inner().unwrap();
    cached.sort_unstable();
    assert_eq!(cached, sealed, "sealed points restored without running");
    assert_eq!(resumed, full, "merged outcomes bit-identical to one pass");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// `NOC_CHAOS` grammar round-trip at the integration seam: the exact
/// string CI's chaos leg exports produces the spec the supervisor arms.
#[test]
fn ci_chaos_grammar_arms_the_expected_spec() {
    let spec = ChaosSpec::parse("seed=7,panic=0.3,deadlock=0.2,delay=0.5,delay_ms=3,torn=1");
    assert_eq!(spec.seed, 7);
    assert!(spec.torn_files);
    assert!((spec.panic_prob - 0.3).abs() < 1e-12);
    assert!((spec.deadlock_prob - 0.2).abs() < 1e-12);
    // The schedule is a pure function of the seed: the same spec rolls
    // the same faults in a re-run (what makes chaos runs debuggable).
    for index in 0..32 {
        assert_eq!(spec.panics(index, 1), spec.panics(index, 1));
        assert_eq!(spec.deadlocks(index), spec.deadlocks(index));
    }
}
