//! The telemetry acceptance contract: the per-link ledger's hierarchical
//! roll-ups reconstruct the aggregate energy ledger **exactly** (counter
//! for counter) on arbitrary topologies and loads, telemetry is pure
//! observability (pushing it to the policy changes nothing by default),
//! and a pillar that died before the window reports zero TSV energy.

use adele::online::ElevatorFirstSelector;
use noc_energy::EnergyLedger;
use noc_exp::{Event, Scenario, SelectorSpec, WorkloadKind};
use noc_sim::{SimConfig, Simulator};
use noc_topology::{ElevatorId, ElevatorSet, Mesh3d};
use noc_traffic::SyntheticTraffic;
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = (Mesh3d, ElevatorSet)> {
    (2usize..=4, 2usize..=4, 2usize..=3)
        .prop_map(|(x, y, z)| Mesh3d::new(x, y, z).unwrap())
        .prop_flat_map(|mesh| {
            let columns = prop::collection::hash_set(
                (0..mesh.x() as u8, 0..mesh.y() as u8),
                1..=mesh.nodes_per_layer().min(3),
            );
            columns.prop_map(move |cols| {
                let set = ElevatorSet::new(&mesh, cols).unwrap();
                (mesh, set)
            })
        })
}

fn merged(parts: &[EnergyLedger]) -> EnergyLedger {
    let mut sum = EnergyLedger::default();
    for part in parts {
        sum.merge(part);
    }
    sum
}

proptest! {
    /// Counter-for-counter equality between the aggregate ledger and the
    /// per-link roll-up, plus exact partition at every hierarchy level.
    #[test]
    fn link_rollup_equals_aggregate_ledger(
        (mesh, elevators) in arb_topology(),
        rate in 0.001f64..0.008,
        seed in 0u64..1_000,
    ) {
        let config = SimConfig::new(mesh, elevators.clone())
            .with_phases(50, 400, 2_000)
            .with_seed(seed);
        let traffic = SyntheticTraffic::uniform(&mesh, rate, seed);
        let selector = ElevatorFirstSelector::new(&mesh, &elevators);
        let mut sim = Simulator::new(config, Box::new(traffic), Box::new(selector));
        sim.advance(50).unwrap();
        let summary = sim.measure_window(400).unwrap();

        let map = sim.link_map();
        let telemetry = sim.link_ledger();
        let aggregate = *sim.energy_ledger();

        prop_assert_eq!(telemetry.aggregate(map), aggregate);
        prop_assert_eq!(merged(&telemetry.router_ledgers(map)), aggregate);
        prop_assert_eq!(merged(&telemetry.layer_ledgers(map)), aggregate);
        // Every vertical hop belongs to exactly one pillar.
        let tsv_total: u64 = telemetry.pillar_tsv_flits(map).iter().sum();
        prop_assert_eq!(tsv_total, aggregate.vertical_hops);
        // The summary's pillar views come from the same roll-up.
        prop_assert_eq!(&summary.pillar_tsv_flits, &telemetry.pillar_tsv_flits(map));
        prop_assert_eq!(summary.pillar_energy_nj.len(), elevators.len());
    }
}

/// A pillar that died before the measurement window reports exactly zero
/// TSV energy during it: nothing selects it, and nothing drains through
/// it once in-flight wormholes are gone.
#[test]
fn failed_pillar_tsv_links_report_zero_energy() {
    let mesh = Mesh3d::new(4, 4, 2).unwrap();
    let elevators = ElevatorSet::new(&mesh, [(0, 0), (3, 3)]).unwrap();
    let victim = ElevatorId(0);
    let scenario = Scenario::new("tsv-zero", mesh, elevators)
        .with_workload(WorkloadKind::Uniform { rate: 0.005 })
        .with_selector(SelectorSpec::adele())
        .with_phases(200, 800, 4_000)
        .with_seed(13)
        .with_event(Event::ElevatorFail {
            cycle: 0,
            elevator: victim,
        });
    let mut sim = scenario.build_simulator();
    sim.advance(200).unwrap();
    let summary = sim.measure_window(800).unwrap();

    assert_eq!(
        summary.pillar_tsv_flits[victim.index()],
        0,
        "no flit may cross the dead pillar's TSVs during the window"
    );
    assert!(
        summary.pillar_tsv_flits[1] > 0,
        "the survivor carries the vertical traffic"
    );
    // Link-level view agrees: every TSV link of the victim is silent.
    let map = sim.link_map();
    let telemetry = sim.link_ledger();
    let mut victim_links = 0;
    for (id, _) in map.links() {
        if map.link_pillar(id) == Some(victim) {
            victim_links += 1;
            assert_eq!(telemetry.link_flits_total(id), 0, "{id} must be silent");
        }
    }
    assert_eq!(victim_links, 2, "one up + one down TSV on a 2-layer pillar");
    // The pillar's routers still burn static energy, but its TSVs none.
    assert_eq!(
        telemetry.pillar_ledgers(map)[victim.index()].vertical_hops,
        0
    );
}

/// The telemetry push is pure observability: changing the feedback period
/// (or disabling it) leaves default-configuration results bit-identical.
#[test]
fn telemetry_push_is_inert_for_default_policies() {
    let mesh = Mesh3d::new(4, 4, 2).unwrap();
    let elevators = ElevatorSet::new(&mesh, [(0, 0), (3, 3)]).unwrap();
    let run = |period: u64| {
        let config = SimConfig::new(mesh, elevators.clone())
            .with_phases(200, 800, 4_000)
            .with_seed(7)
            .with_energy_feedback_period(period);
        let traffic = SyntheticTraffic::uniform(&mesh, 0.004, 7);
        let selector = SelectorSpec::adele().build(&mesh, &elevators, 7);
        Simulator::new(config, Box::new(traffic), selector)
            .run()
            .unwrap()
    };
    let baseline = run(0);
    for period in [32, 256, 1024] {
        assert_eq!(
            run(period),
            baseline,
            "feedback period {period} must not perturb default-config runs"
        );
    }
}

/// The measured-energy mode is live end to end: deterministic, completes,
/// and actually consumes the pushed signal (decisions may legitimately
/// coincide with the proxy's, so only determinism and delivery are
/// asserted here; the selector-level unit tests pin the decision change).
#[test]
fn measured_energy_mode_runs_deterministically() {
    let mesh = Mesh3d::new(4, 4, 2).unwrap();
    let elevators = ElevatorSet::new(&mesh, [(0, 0), (3, 3)]).unwrap();
    let scenario = Scenario::new("measured", mesh, elevators)
        .with_workload(WorkloadKind::Uniform { rate: 0.004 })
        .with_selector(SelectorSpec::adele_measured_energy())
        .with_phases(200, 800, 4_000)
        .with_seed(21);
    let a = scenario.run().unwrap();
    let b = scenario.run().unwrap();
    assert_eq!(a, b, "measured mode must stay deterministic");
    assert!(a.summary.delivered_packets > 0);
    assert!(a.summary.completed);
}

/// Default-config AdEle ignores the measured-energy signal entirely: a
/// run with the flag off equals a run of the plain paper policy even
/// though the simulator pushes telemetry either way.
#[test]
fn measured_flag_off_matches_paper_policy_bitwise() {
    let mesh = Mesh3d::new(4, 4, 2).unwrap();
    let elevators = ElevatorSet::new(&mesh, [(0, 0), (3, 3)]).unwrap();
    let base = Scenario::new("paper", mesh, elevators)
        .with_workload(WorkloadKind::Uniform { rate: 0.004 })
        .with_phases(200, 800, 4_000)
        .with_seed(31);
    let paper = base
        .clone()
        .with_selector(SelectorSpec::adele())
        .run()
        .unwrap();
    let flag_off = base
        .with_selector(SelectorSpec::Adele {
            rr_only: false,
            measured_energy: false,
            assignment: None,
        })
        .run()
        .unwrap();
    assert_eq!(paper.summary, flag_off.summary);
}
