//! The metrics observatory's core contracts, pinned permanently:
//!
//! * **Shard merge exactness** — per-shard histogram partitions fold
//!   into the aggregate counter for counter, so a sharded run's
//!   histograms (and the percentile fields derived from them) are
//!   bit-identical to the sequential run's at every shard and worker
//!   count. Same argument as the link ledger: each measured packet's
//!   tail ejects in exactly one shard, so the partitions are disjoint
//!   and merge by addition.
//! * **Percentile fidelity** — a log2-bucketed histogram cannot return
//!   the exact quantile, but it must land in the same bucket as the
//!   exact quantile of the underlying value list, and never below it.

use noc_exp::{Scenario, WorkloadKind, WorkloadSpec};
use noc_obs::{Hist, PacketHists};
use noc_topology::{ElevatorSet, Mesh3d};
use proptest::prelude::*;

/// A random but valid tiny scenario, short enough that every proptest
/// case runs in milliseconds. Mirrors `tests/trace_determinism.rs`.
fn arb_scenario() -> impl Strategy<Value = Scenario> {
    let topo = (2usize..=4, 2usize..=4, 2usize..=3).prop_flat_map(|(x, y, z)| {
        let columns = prop::collection::hash_set((0..x as u8, 0..y as u8), 1..=3)
            .prop_map(|set| set.into_iter().collect::<Vec<_>>());
        (Just(Mesh3d::new(x, y, z).unwrap()), columns)
    });
    (topo, 0.001f64..0.006, 0u64..1000, 0usize..2).prop_map(|((mesh, columns), rate, seed, v2)| {
        let elevators = ElevatorSet::new(&mesh, columns).unwrap();
        let workload = if v2 == 1 {
            WorkloadSpec::v2(WorkloadKind::Uniform { rate })
        } else {
            WorkloadSpec::v1(WorkloadKind::Uniform { rate })
        };
        Scenario::new("hist-prop", mesh, elevators)
            .with_phases(100, 400, 2_000)
            .with_workload(workload)
            .with_seed(seed)
    })
}

/// The exact `p`-th percentile of a value list under the same ceiling
/// rank the histogram uses: the smallest value with at least
/// `ceil(total * p / 100)` values at or below it (rank at least 1).
fn exact_percentile(values: &[u64], p: u64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((sorted.len() as u128 * u128::from(p)).div_ceil(100)).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, ..ProptestConfig::default()
    })]

    /// The whole `RunSummary` — including the histogram-derived
    /// percentile fields — is bit-identical across shard counts
    /// {1, 2, 8}. This is the end-to-end form of the merge contract:
    /// if a partition were dropped, double-folded, or recorded into a
    /// wrong shard, a percentile would move.
    #[test]
    fn summaries_with_percentiles_are_shard_independent(
        scenario in arb_scenario(),
    ) {
        let mut base = scenario.clone();
        base.shards = 1;
        let sequential = base.run().unwrap();
        prop_assert!(
            sequential.summary.delivered_packets == 0
                || sequential.summary.latency_max > 0,
            "delivered packets must surface in the latency histogram"
        );
        for shards in [2usize, 8] {
            let mut sharded = scenario.clone();
            sharded.shards = shards;
            let result = sharded.run().unwrap();
            prop_assert_eq!(&result.summary, &sequential.summary);
        }
    }

    /// Merging per-partition histograms equals recording sequentially,
    /// counter for counter, at k ∈ {1, 2, 8} partitions — the pure-data
    /// core of what the sharded stepping engine relies on.
    #[test]
    fn partitioned_histograms_merge_to_the_sequential_one(
        values in prop::collection::vec(0u64..100_000, 0..300),
    ) {
        let mut sequential = Hist::new();
        for &v in &values {
            sequential.record(v);
        }
        for k in [1usize, 2, 8] {
            let mut parts = vec![Hist::new(); k];
            for (i, &v) in values.iter().enumerate() {
                // Deterministic round-robin partition: any assignment
                // must merge to the same aggregate.
                parts[i % k].record(v);
            }
            let mut merged = Hist::new();
            for mut part in parts {
                merged.merge_from(&mut part);
                prop_assert!(part.is_zero(), "merge_from drains the partition");
            }
            prop_assert_eq!(&merged, &sequential);
        }
    }

    /// The bucketed percentile lands in the same log2 bucket as the
    /// exact quantile of the recorded values, and never reports below
    /// it — "within one bucket's resolution" made precise.
    #[test]
    fn percentiles_match_exact_quantiles_to_bucket_resolution(
        values in prop::collection::vec(0u64..1_000_000, 1..400),
    ) {
        let mut hist = Hist::new();
        for &v in &values {
            hist.record(v);
        }
        for p in [50u64, 90, 99, 100] {
            let exact = exact_percentile(&values, p);
            let bucketed = hist.percentile(p);
            prop_assert!(
                bucketed >= exact,
                "p{p}: bucketed {bucketed} under exact {exact}"
            );
            prop_assert_eq!(
                Hist::bucket_of(bucketed),
                Hist::bucket_of(exact),
                "p{}: bucketed {} and exact {} in different buckets",
                p,
                bucketed,
                exact
            );
        }
    }
}

/// The percentile walk on hand-built distributions, including the
/// degenerate ones the proptest rarely hits.
#[test]
fn percentile_walk_handles_edges() {
    let empty = Hist::new();
    assert_eq!(empty.percentile(50), 0, "empty histogram reports 0");

    let mut zeros = Hist::new();
    for _ in 0..10 {
        zeros.record(0);
    }
    assert_eq!(zeros.percentile(99), 0, "all-zero values stay in bucket 0");

    let mut one = Hist::new();
    one.record(37);
    for p in [1, 50, 99, 100] {
        assert_eq!(one.percentile(p), 37, "single value capped by max");
    }
}

/// `PacketHists` partitions drain add-and-zero, so a mid-window fold
/// followed by the end-of-window fold cannot double-count.
#[test]
fn packet_hists_fold_is_idempotent_after_drain() {
    let mut aggregate = PacketHists::new();
    let mut partition = PacketHists::new();
    partition.latency.record(12);
    partition.network_latency.record(9);
    partition.hops.record(3);

    aggregate.merge_from(&mut partition);
    assert!(partition.is_zero());
    let after_first = aggregate.clone();

    // Folding the drained partition again is a no-op.
    aggregate.merge_from(&mut partition);
    assert_eq!(aggregate, after_first);
    assert_eq!(aggregate.latency.total(), 1);
    assert_eq!(aggregate.latency.max(), 12);
}
