//! Compare all four elevator-selection policies (Elevator-First, CDA,
//! AdEle, AdEle-RR) on one congested scenario — a miniature version of the
//! paper's Fig. 4 experiment.
//!
//! Run with: `cargo run --release -p adele-bench --example policy_comparison`

use adele_bench::{make_selector, offline_assignment, sim_config, Policy, Workload};
use noc_sim::harness::run_once;
use noc_topology::placement::Placement;

fn main() {
    let placement = Placement::Ps1;
    let (mesh, elevators) = placement.instantiate();
    let assignment = offline_assignment(placement);
    let rate = 0.004; // near PS1's saturation knee under uniform traffic

    println!("PS1 (4x4x4, 3 elevators), uniform traffic @ {rate} packets/node/cycle\n");
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>10}",
        "policy", "latency", "network lat", "energy/flit", "drained"
    );
    for policy in [
        Policy::ElevFirst,
        Policy::Cda,
        Policy::Adele,
        Policy::AdeleRr,
    ] {
        let summary = run_once(
            &sim_config(placement, 5),
            Workload::Uniform.build(&mesh, rate, 99),
            make_selector(policy, &mesh, &elevators, Some(&assignment), 7),
        )
        .unwrap();
        println!(
            "{:<10} {:>10.1}cy {:>10.1}cy {:>11.1}nJ {:>10}",
            summary.policy,
            summary.avg_latency,
            summary.avg_network_latency,
            summary.energy_per_flit_nj,
            summary.completed
        );
    }
    println!("\nExpected ordering (paper Fig. 4): AdEle lowest latency, ElevFirst highest,");
    println!("CDA in between, AdEle-RR between CDA and AdEle.");
}
