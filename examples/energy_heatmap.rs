//! Link-granular energy telemetry in action: run AdEle on PS3, snapshot
//! the hottest links of a healthy measurement window, then fail a TSV
//! pillar and snapshot again — the dead pillar's TSV links go exactly
//! silent and the heat redistributes onto the survivors.
//!
//! Run with: `cargo run --release -p adele-repro --example energy_heatmap`
//! (`ADELE_QUICK=1` shrinks the windows for a smoke pass).

use adele_bench::quick_mode;
use noc_energy::{HeatmapReport, LinkEnergyReport};
use noc_exp::{Scenario, SelectorSpec, WorkloadKind};
use noc_sim::hooks::SimCommand;
use noc_sim::Simulator;
use noc_topology::placement::Placement;
use noc_topology::ElevatorId;

fn snapshot(sim: &Simulator, label: &str) -> (LinkEnergyReport, HeatmapReport) {
    let model = noc_energy::EnergyModel::default_45nm();
    let report = LinkEnergyReport::from_ledger(sim.link_map(), sim.link_ledger(), &model);
    let heat = HeatmapReport::from_ledger(sim.link_map(), sim.link_ledger(), &model);

    println!("\n== {label} ==");
    println!("hottest links (attributed energy = traversal + downstream FIFO/crossbar):");
    for row in report.hottest(8) {
        println!(
            "  l{:<4} {}-{}-{} --{}--> {}-{}-{}  {:>10.1} nJ{}",
            row.link,
            row.src.0,
            row.src.1,
            row.src.2,
            row.dir,
            row.dst.0,
            row.dst.1,
            row.dst.2,
            row.attributed_nj,
            if row.vertical { "  [TSV]" } else { "" },
        );
    }
    println!("per-pillar TSV energy (nJ):");
    for (e, (&energy, &flits)) in heat
        .pillar_tsv_energy_nj
        .iter()
        .zip(&heat.pillar_tsv_flits)
        .enumerate()
    {
        println!("  e{e}: {energy:>10.1} nJ over {flits} TSV flits");
    }
    (report, heat)
}

fn main() {
    let (warmup, window, gap) = if quick_mode() {
        (300, 1_000, 200)
    } else {
        (1_000, 3_000, 400)
    };
    let victim = ElevatorId(2);

    // PS3: 8 pillars on a 4×4×4 mesh, AdEle with full subsets.
    let scenario = Scenario::from_placement("energy-heatmap", Placement::Ps3)
        .with_workload(WorkloadKind::Uniform { rate: 0.005 })
        .with_selector(SelectorSpec::adele())
        .with_phases(warmup, 2 * window, 30_000)
        .with_seed(42);
    let mut sim = scenario.build_simulator();

    sim.advance(warmup).unwrap();
    let _healthy = sim.measure_window(window).unwrap();
    let (_, heat_before) = snapshot(&sim, "healthy window");

    // Kill the pillar, let in-flight wormholes drain, measure again.
    sim.schedule_command(sim.cycle(), SimCommand::FailElevator(victim));
    sim.advance(gap).unwrap();
    let _failed = sim.measure_window(window).unwrap();
    let (report_after, heat_after) = snapshot(&sim, format!("elevator {victim} failed").as_str());

    assert!(
        heat_before.pillar_tsv_flits[victim.index()] > 0,
        "sanity: the victim carried TSV traffic while healthy"
    );
    assert_eq!(
        heat_after.pillar_tsv_flits[victim.index()],
        0,
        "the dead pillar's TSV links must be exactly silent"
    );
    assert!(
        report_after
            .hottest(1)
            .first()
            .is_some_and(|r| r.attributed_nj > 0.0),
        "the survivors keep carrying (and heating) the network"
    );

    let survivors: f64 = heat_after.pillar_tsv_energy_nj.iter().sum();
    println!(
        "\nTSV energy: victim {:.1} → 0.0 nJ; surviving pillars carry {survivors:.1} nJ.",
        heat_before.pillar_tsv_energy_nj[victim.index()],
    );
    println!(
        "Per-link telemetry turns the failure into a visible heat shift — \
         the same roll-ups feed Fig. 6's link-granular mode and AdEle's \
         measured-energy signal."
    );
}
