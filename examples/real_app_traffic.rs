//! Drive the simulator with the synthetic SPLASH-2/PARSEC application
//! models (the workspace's stand-in for the paper's Gem5 traces) and show
//! how AdEle's benefit tracks application load — heavy apps (canneal, fft,
//! radix, water) gain, light ones (fluidanimate, lu) run near zero-load.
//!
//! Run with: `cargo run --release -p adele-bench --example real_app_traffic`

use adele_bench::{app_traffic, make_selector, offline_assignment, sim_config, Policy};
use noc_sim::harness::run_once;
use noc_topology::placement::Placement;
use noc_traffic::apps::AppKind;

fn main() {
    let placement = Placement::Ps2;
    let (mesh, elevators) = placement.instantiate();
    let assignment = offline_assignment(placement);

    println!("PS2 (4x4x4, 4 elevators) under application-model traffic\n");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>10}",
        "app", "intensity", "ElevFirst", "AdEle", "gain"
    );
    for app in AppKind::ALL {
        let run = |policy: Policy| {
            run_once(
                &sim_config(placement, 13),
                app_traffic(app, placement, &mesh, 2024),
                make_selector(policy, &mesh, &elevators, Some(&assignment), 7),
            )
            .unwrap()
        };
        let baseline = run(Policy::ElevFirst);
        let adele = run(Policy::Adele);
        let gain = 1.0 - adele.avg_latency / baseline.avg_latency.max(1e-9);
        println!(
            "{:<14} {:>10.2} {:>10.1}cy {:>10.1}cy {:>9.1}%",
            app.name(),
            app.profile().intensity,
            baseline.avg_latency,
            adele.avg_latency,
            gain * 100.0
        );
    }
    println!("\nHigh-intensity apps stress the shared elevators, giving AdEle room to");
    println!("rebalance; low-intensity stencil apps see little elevator contention.");
}
