//! Explore AdEle's offline multi-objective optimisation: run AMOSA on a
//! custom PC-3DNoC, inspect the Pareto front, and compare selection
//! strategies — the workflow behind the paper's Fig. 3.
//!
//! Run with: `cargo run --release -p adele-bench --example offline_optimization`

use adele::offline::{ObjectiveEvaluator, OfflineOptimizer, SelectionStrategy, SubsetAssignment};
use amosa::AmosaParams;
use noc_topology::{ElevatorSet, Mesh3d};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 6×6×3 stack with five elevators along a diagonal band.
    let mesh = Mesh3d::new(6, 6, 3)?;
    let elevators = ElevatorSet::new(&mesh, [(0, 1), (2, 2), (4, 4), (5, 0), (1, 5)])?;

    // Reference points: the two extreme hand-built assignments.
    let evaluator = ObjectiveEvaluator::uniform(&mesh, &elevators);
    let nearest = SubsetAssignment::nearest(&mesh, &elevators);
    let full = SubsetAssignment::full(&mesh, &elevators);
    let (nv, nd) = evaluator.evaluate(&nearest);
    let (fv, fd) = evaluator.evaluate(&full);
    println!("nearest-only subsets: variance={nv:.3} distance={nd:.3}");
    println!("full subsets:         variance={fv:.3} distance={fd:.3}");

    // AMOSA explores the space between (and beyond) those extremes.
    let result = OfflineOptimizer::new(mesh, elevators)
        .with_params(AmosaParams::fast(11))
        .optimize();
    println!("\nPareto front ({} points):", result.pareto.len());
    println!("{:>10}  {:>10}  {:>8}", "variance", "distance", "mean|A|");
    for point in &result.pareto {
        println!(
            "{:>10.4}  {:>10.4}  {:>8.2}",
            point.utilization_variance,
            point.average_distance,
            point.assignment.mean_subset_size()
        );
    }

    for strategy in [
        SelectionStrategy::LatencyLeaning,
        SelectionStrategy::Knee,
        SelectionStrategy::EnergyLeaning,
    ] {
        let pick = result.select(strategy);
        println!(
            "\n{strategy:?}: variance={:.4}, distance={:.4}",
            pick.utilization_variance, pick.average_distance
        );
    }

    // Serialise the latency-leaning pick the way the harness caches it.
    let pick = result.select(SelectionStrategy::LatencyLeaning);
    let text = pick.assignment.to_text();
    let round_trip = SubsetAssignment::from_text(&text)?;
    assert_eq!(round_trip, pick.assignment);
    println!("\nassignment serialises to {} bytes of text", text.len());
    Ok(())
}
