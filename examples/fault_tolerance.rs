//! Fault tolerance (the extension sketched in the paper's conclusion):
//! fail an elevator mid-run and watch AdEle route around it using its
//! subset redundancy, then repair it.
//!
//! This example drives the selector directly (outside the simulator) to
//! make the selection behaviour visible packet by packet.
//!
//! Run with: `cargo run --release -p adele-bench --example fault_tolerance`

use adele::offline::SubsetAssignment;
use adele::online::{AdeleSelector, ElevatorSelector, SelectionContext, ZeroProbe};
use adele::AdeleConfig;
use noc_topology::placement::Placement;
use noc_topology::{Coord, ElevatorId};

fn main() {
    let (mesh, elevators) = Placement::Ps3.instantiate();
    // Give every router the full elevator set so redundancy is maximal.
    let assignment = SubsetAssignment::full(&mesh, &elevators);
    let mut config = AdeleConfig::paper_default();
    config.low_traffic_override = false; // keep round-robin visible
    let mut selector =
        AdeleSelector::from_assignment(&mesh, &elevators, &assignment, config, 42).unwrap();

    let probe = ZeroProbe::new(mesh);
    let src = Coord::new(0, 0, 0);
    let dst = Coord::new(3, 3, 2);
    let ctx = SelectionContext {
        src_id: mesh.node_id(src).unwrap(),
        src,
        dst_id: mesh.node_id(dst).unwrap(),
        dst,
        elevators: &elevators,
        probe: &probe,
        cycle: 0,
    };

    let tally = |selector: &mut AdeleSelector, label: &str| {
        let mut counts = vec![0usize; elevators.len()];
        for _ in 0..800 {
            counts[selector.select(&ctx).index()] += 1;
        }
        println!("{label:<28} per-elevator picks: {counts:?}");
        counts
    };

    println!(
        "PS3: {} elevators; selecting for packets {src} -> {dst}\n",
        elevators.len()
    );
    tally(&mut selector, "all elevators healthy");

    let victim = ElevatorId(2);
    selector.set_elevator_failed(victim, true);
    let counts = tally(&mut selector, "e2 failed");
    assert_eq!(
        counts[victim.index()],
        0,
        "failed elevator must never be picked"
    );

    selector.set_elevator_failed(victim, false);
    let counts = tally(&mut selector, "e2 repaired");
    assert!(
        counts[victim.index()] > 0,
        "repaired elevator rejoins rotation"
    );

    println!("\nAdEle's subset redundancy makes elevator fail-over a one-bit mask update —");
    println!("no re-optimisation required (the paper's conclusion calls this out).");
}
