//! Fault tolerance (the extension sketched in the paper's conclusion),
//! now exercised **inside** the cycle simulator: a `noc_exp` scenario
//! schedules an `ElevatorFail` event mid-run, AdEle's per-router subsets
//! route around the dead pillar from the very next packet, and a later
//! `ElevatorRecover` folds it back into rotation — no re-optimisation, no
//! simulator restart.
//!
//! The run is split into three measurement windows (healthy → failed →
//! recovered) so the latency cost of losing a pillar is visible directly.
//!
//! Run with: `cargo run --release -p adele-repro --example fault_tolerance`
//! (`ADELE_QUICK=1` shrinks the windows for a smoke pass).

use adele_bench::quick_mode;
use noc_exp::{Event, Scenario, SelectorSpec, WorkloadKind};
use noc_sim::RunSummary;
use noc_topology::placement::Placement;
use noc_topology::ElevatorId;

fn main() {
    let (warmup, window) = if quick_mode() {
        (400, 1_200)
    } else {
        (1_000, 3_000)
    };
    let victim = ElevatorId(2);

    // PS3: 8 elevators on a 4×4×4 mesh; AdEle with full subsets so the
    // redundancy is maximal. The victim dies at the start of the second
    // window and recovers at the start of the third.
    let scenario = Scenario::from_placement("elevator-failure", Placement::Ps3)
        .with_workload(WorkloadKind::Uniform { rate: 0.005 })
        .with_selector(SelectorSpec::adele())
        .with_phases(warmup, 3 * window, 30_000)
        .with_seed(42)
        .with_event(Event::ElevatorFail {
            cycle: warmup + window,
            elevator: victim,
        })
        .with_event(Event::ElevatorRecover {
            cycle: warmup + 2 * window,
            elevator: victim,
        });

    let mut sim = scenario.build_simulator();
    sim.advance(warmup).unwrap();
    let healthy = sim.measure_window(window).unwrap();
    let failed = sim.measure_window(window).unwrap();
    let recovered = sim.measure_window(window).unwrap();

    println!(
        "PS3, AdEle, uniform 0.005 — elevator {victim} fails at cycle {} and recovers at {}\n",
        warmup + window,
        warmup + 2 * window
    );
    println!(
        "{:<12} {:>12} {:>14} {:>14}",
        "window", "avg latency", "victim picks", "all picks"
    );
    for (label, summary) in [
        ("healthy", &healthy),
        ("failed", &failed),
        ("recovered", &recovered),
    ] {
        let picks: u64 = summary.elevator_packets.iter().sum();
        println!(
            "{label:<12} {:>12.1} {:>14} {:>14}",
            summary.avg_latency,
            summary.elevator_packets[victim.index()],
            picks
        );
    }

    let victim_picks = |s: &RunSummary| s.elevator_packets[victim.index()];
    assert!(
        victim_picks(&healthy) > 0,
        "sanity: the victim carries load while healthy"
    );
    assert_eq!(
        victim_picks(&failed),
        0,
        "no packet may be assigned to the failed pillar"
    );
    assert!(
        victim_picks(&recovered) > 0,
        "the repaired pillar must re-enter rotation"
    );

    println!(
        "\nlatency before the failure: {:.1} cycles; after: {:.1} cycles \
         ({:+.1}% with one pillar down, spread over the survivors)",
        healthy.avg_latency,
        failed.avg_latency,
        100.0 * (failed.avg_latency / healthy.avg_latency - 1.0)
    );
    println!(
        "AdEle's subset redundancy turns pillar failure into a one-event rebalance — \
         selection adapts mid-run, exactly as the paper's conclusion sketches."
    );
}
