//! The `noc_exp` parallel sweep runner on the paper's large PM
//! configuration (8×8×4 mesh, 12 elevators): the same 8-point injection
//! sweep runs once sequentially and once on the scoped-thread worker
//! pool, the results are asserted **bit-identical**, and both wall-clock
//! times are printed. On a multi-core host the parallel sweep approaches
//! `min(cores, points)`× faster; on a single core it degenerates to the
//! sequential path.
//!
//! Run with: `cargo run --release -p adele-repro --example parallel_sweep`
//! (`ADELE_QUICK=1` shrinks the windows for a smoke pass).

use adele::online::{ElevatorFirstSelector, ElevatorSelector};
use adele_bench::quick_mode;
use noc_exp::runner::{default_threads, par_injection_sweep};
use noc_sim::harness::injection_sweep;
use noc_sim::SimConfig;
use noc_topology::placement::Placement;
use noc_traffic::{SyntheticTraffic, TrafficSource};
use std::time::Instant;

fn main() {
    let (mesh, elevators) = Placement::Pm.instantiate();
    let (warmup, measure, drain) = if quick_mode() {
        (200, 800, 4_000)
    } else {
        (500, 2_500, 10_000)
    };
    let config = SimConfig::new(mesh, elevators.clone())
        .with_phases(warmup, measure, drain)
        .with_seed(7);
    let rates: Vec<f64> = (1..=8).map(|i| 0.003 * f64::from(i) / 8.0).collect();

    let traffic = |rate: f64| -> Box<dyn TrafficSource> {
        Box::new(SyntheticTraffic::uniform(&mesh, rate, 11))
    };
    let selector =
        || -> Box<dyn ElevatorSelector> { Box::new(ElevatorFirstSelector::new(&mesh, &elevators)) };

    let threads = default_threads();
    println!(
        "PM (8×8×4, 12 elevators), {} sweep points, {} worker thread(s)\n",
        rates.len(),
        threads
    );

    let t = Instant::now();
    let sequential = injection_sweep(&config, &rates, &traffic, &selector)
        .expect("healthy sweep: default watchdog");
    let t_seq = t.elapsed();

    let t = Instant::now();
    let parallel = par_injection_sweep(&config, &rates, &traffic, &selector, threads)
        .expect("healthy sweep: default watchdog");
    let t_par = t.elapsed();

    assert_eq!(
        parallel, sequential,
        "the parallel sweep must be bit-identical to the sequential one"
    );

    println!("{:>8}  {:>12}  {:>10}", "rate", "avg latency", "completed");
    for p in &parallel {
        println!(
            "{:>8.4}  {:>12.1}  {:>10}",
            p.rate, p.summary.avg_latency, p.summary.completed
        );
    }

    let speedup = t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-9);
    println!(
        "\nsequential: {:.2}s   parallel: {:.2}s   speedup: {speedup:.2}x \
         (results verified bit-identical)",
        t_seq.as_secs_f64(),
        t_par.as_secs_f64()
    );
    if threads == 1 {
        println!("(single-core host: the pool degenerates to the sequential path)");
    }
}
