//! Quickstart: simulate a partially connected 3D NoC with AdEle elevator
//! selection and print latency/energy statistics.
//!
//! Run with: `cargo run --release -p adele-bench --example quickstart`

use adele::offline::{OfflineOptimizer, SelectionStrategy};
use adele::online::AdeleSelector;
use amosa::AmosaParams;
use noc_sim::{SimConfig, Simulator};
use noc_topology::placement::Placement;
use noc_traffic::SyntheticTraffic;

fn main() {
    // 1. Pick a topology: the paper's PS1 pattern — a 4×4×4 mesh whose
    //    vertical TSV links exist at only 3 of the 16 columns.
    let (mesh, elevators) = Placement::Ps1.instantiate();
    println!(
        "topology: {}x{}x{} mesh, {} elevators",
        mesh.x(),
        mesh.y(),
        mesh.layers(),
        elevators.len()
    );

    // 2. Offline stage: AMOSA searches for per-router elevator subsets
    //    that balance elevator utilisation against route length.
    let result = OfflineOptimizer::new(mesh, elevators.clone())
        .with_params(AmosaParams::fast(42))
        .optimize();
    let solution = result.select(SelectionStrategy::LatencyLeaning);
    println!(
        "offline: {} Pareto points from {} evaluations; picked variance={:.3}, distance={:.2}",
        result.pareto.len(),
        result.evaluations,
        solution.utilization_variance,
        solution.average_distance
    );

    // 3. Online stage: plug the AdEle selector into the cycle-level
    //    simulator under uniform traffic.
    let selector = AdeleSelector::from_solution(&mesh, &elevators, solution, 7);
    let traffic = SyntheticTraffic::uniform(&mesh, 0.003, 7);
    let config = SimConfig::new(mesh, elevators)
        .with_phases(2_000, 10_000, 30_000)
        .with_seed(7);
    let summary = Simulator::new(config, Box::new(traffic), Box::new(selector))
        .run()
        .unwrap();

    println!(
        "simulated: {} packets delivered, avg latency {:.1} cycles, {:.1} nJ/flit, throughput {:.4} flits/node/cycle",
        summary.delivered_packets,
        summary.avg_latency,
        summary.energy_per_flit_nj,
        summary.throughput_flits
    );
    println!("per-elevator packet counts: {:?}", summary.elevator_packets);
}
