//! Design your own partially connected 3D NoC: compare a hand-placed
//! elevator pattern against the average-distance placement optimiser, then
//! check the impact in simulation.
//!
//! Run with: `cargo run --release -p adele-bench --example custom_placement`

use adele::online::ElevatorFirstSelector;
use noc_sim::{SimConfig, Simulator};
use noc_topology::placement::optimize_columns;
use noc_topology::{ElevatorSet, Mesh3d};
use noc_traffic::SyntheticTraffic;

fn simulate(mesh: Mesh3d, elevators: ElevatorSet, label: &str) {
    let selector = ElevatorFirstSelector::new(&mesh, &elevators);
    let traffic = SyntheticTraffic::uniform(&mesh, 0.003, 3);
    let config = SimConfig::new(mesh, elevators)
        .with_phases(2_000, 8_000, 30_000)
        .with_seed(3);
    let summary = Simulator::new(config, Box::new(traffic), Box::new(selector))
        .run()
        .unwrap();
    println!(
        "{label:<22} latency={:>7.1}cy  energy={:>6.1}nJ/flit  drained={}",
        summary.avg_latency, summary.energy_per_flit_nj, summary.completed
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mesh = Mesh3d::new(5, 5, 3)?;

    // A naive hand placement: all TSV pillars crowded into one corner
    // (cheap to route on silicon, bad for traffic).
    let corner = ElevatorSet::new(&mesh, [(0, 0), (1, 0), (0, 1), (1, 1)])?;

    // The optimiser spreads the same TSV budget to minimise the average
    // inter-layer route length (how the paper derives PS1/PS3/PM).
    let optimized_columns = optimize_columns(&mesh, 4);
    println!("optimizer chose columns: {optimized_columns:?}\n");
    let optimized = ElevatorSet::new(&mesh, optimized_columns)?;

    simulate(mesh, corner, "corner-clustered");
    simulate(mesh, optimized, "distance-optimized");

    println!("\nSame TSV budget, very different latency: elevator placement matters as");
    println!("much as elevator selection — which is why the paper optimises both.");
    Ok(())
}
