//! Workspace-vendored, dependency-free stand-in for the subset of `serde`
//! this repository uses: a [`Serialize`] trait that lowers values into a
//! self-describing [`Value`] tree, plus the `#[derive(Serialize)]` macro
//! (re-exported from the sibling `serde_derive` crate).
//!
//! The real serde's visitor-based architecture is deliberately not
//! reproduced — every in-tree consumer only ever serialises plain result
//! structs to JSON via `serde_json`, and a value tree is the simplest
//! correct contract for that.

#![forbid(unsafe_code)]

pub use serde_derive::Serialize;

/// A self-describing serialised value (a JSON-shaped tree).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A double. Non-finite values serialise as `null`, as in serde_json.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map — field order is preserved, keeping JSON dumps
    /// deterministic.
    Object(Vec<(String, Value)>),
}

/// Types that can lower themselves into a [`Value`] tree.
pub trait Serialize {
    /// Lowers `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

macro_rules! serialize_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! serialize_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

serialize_int!(i8, i16, i32, i64, isize);
serialize_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
