//! Workspace-vendored, dependency-free stand-in for the subset of `serde`
//! this repository uses: a [`Serialize`] trait that lowers values into a
//! self-describing [`Value`] tree, a [`Deserialize`] trait that lifts
//! values back out of it, and the `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` macros (re-exported from the sibling
//! `serde_derive` crate).
//!
//! The real serde's visitor-based architecture is deliberately not
//! reproduced — the in-tree consumers serialise plain result structs and
//! experiment specs to JSON via `serde_json` and read the specs back, and
//! a value tree is the simplest correct contract for that. Enums use the
//! real serde's externally tagged representation (`"Variant"` for unit
//! variants, `{"Variant": {..fields..}}` for struct variants), so checked
//! JSON spec files stay compatible if the real crate is swapped back in.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialised value (a JSON-shaped tree).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A double. Non-finite values serialise as `null`, as in serde_json.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map — field order is preserved, keeping JSON dumps
    /// deterministic.
    Object(Vec<(String, Value)>),
}

/// Types that can lower themselves into a [`Value`] tree.
pub trait Serialize {
    /// Lowers `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

macro_rules! serialize_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! serialize_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

serialize_int!(i8, i16, i32, i64, isize);
serialize_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

/// Deserialisation error: a human-readable message naming what failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error for an unexpected value shape.
    #[must_use]
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Int(_) | Value::UInt(_) => "an integer",
            Value::Float(_) => "a float",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        };
        DeError(format!("expected {what}, got {kind}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can lift themselves back out of a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the value has the wrong shape or fails
    /// the type's validation.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Looks up field `name` in an object value and deserialises it — the
/// helper the `#[derive(Deserialize)]` expansion builds structs with.
///
/// # Errors
///
/// Returns a [`DeError`] if `value` is not an object, the field is
/// missing, or the field fails to deserialise.
pub fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, DeError> {
    let Value::Object(entries) = value else {
        return Err(DeError::expected("an object", value));
    };
    let entry = entries
        .iter()
        .find(|(k, _)| k == name)
        .ok_or_else(|| DeError(format!("missing field {name:?}")))?;
    T::from_value(&entry.1).map_err(|e| DeError(format!("field {name:?}: {e}")))
}

/// Like [`field`], but a missing field is `Ok(None)` instead of an
/// error — the building block for fields with defaults, keeping
/// already-checked-in documents parseable when a format grows.
///
/// # Errors
///
/// Returns a [`DeError`] if `value` is not an object or the field is
/// present but fails to deserialise (a *malformed* field never falls
/// back to the default silently).
pub fn optional_field<T: Deserialize>(value: &Value, name: &str) -> Result<Option<T>, DeError> {
    let Value::Object(entries) = value else {
        return Err(DeError::expected("an object", value));
    };
    match entries.iter().find(|(k, _)| k == name) {
        None => Ok(None),
        Some((_, v)) => T::from_value(v)
            .map(Some)
            .map_err(|e| DeError(format!("field {name:?}: {e}"))),
    }
}

macro_rules! deserialize_int {
    ($($t:ty),* $(,)?) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match *value {
                    Value::Int(i) => <$t>::try_from(i)
                        .map_err(|_| DeError(format!("{i} out of range for {}", stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(u)
                        .map_err(|_| DeError(format!("{u} out of range for {}", stringify!($t)))),
                    _ => Err(DeError::expected("an integer", value)),
                }
            }
        }
    )*};
}

deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match *value {
            Value::Float(f) => Ok(f),
            Value::Int(i) => Ok(i as f64),
            Value::UInt(u) => Ok(u as f64),
            _ => Err(DeError::expected("a number", value)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match *value {
            Value::Bool(b) => Ok(b),
            _ => Err(DeError::expected("a boolean", value)),
        }
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::expected("a string", value)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("an array", value)),
        }
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal, $($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let Value::Array(items) = value else {
                    return Err(DeError::expected("an array", value));
                };
                if items.len() != $len {
                    return Err(DeError(format!(
                        "expected a {}-element array, got {}", $len, items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

deserialize_tuple! {
    (1, A: 0)
    (2, A: 0, B: 1)
    (3, A: 0, B: 1, C: 2)
    (4, A: 0, B: 1, C: 2, D: 3)
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}
