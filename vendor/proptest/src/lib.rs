//! Workspace-vendored, dependency-free property-testing harness exposing
//! the subset of the `proptest` API this repository uses:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, implemented
//!   for numeric ranges, tuples and [`strategy::Just`],
//! * [`collection::vec`] and [`collection::hash_set`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`.
//!
//! Unlike the real proptest there is **no shrinking**: on failure the
//! harness reports the case index and the seed that reproduces it. Runs
//! are deterministic by default — the RNG seed is fixed (overridable with
//! `PROPTEST_SEED`) and the case count is pinned (overridable with
//! `PROPTEST_CASES`), so CI results are reproducible.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into a strategy-producing `f` and samples
        /// the produced strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always produces a clone of a fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn sample(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.start..self.end)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(*self.start()..=*self.end())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.min..=self.max)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates `HashSet`s whose target size is drawn from `size`.
    ///
    /// If the element domain is too small to reach the target size, the
    /// set saturates at whatever distinct values were found (the real
    /// proptest rejects instead; saturating keeps tiny meshes usable).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`hash_set`].
    #[derive(Clone, Debug)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> HashSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 20 + 50 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod test_runner {
    //! The case-running loop, failure type, and configuration.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration, honouring `PROPTEST_CASES` / `PROPTEST_SEED`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
        /// Maximum number of `prop_assume!` rejections before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: env_u64("PROPTEST_CASES", 48) as u32,
                max_global_rejects: 1024,
            }
        }
    }

    fn env_u64(name: &str, default: u64) -> u64 {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assert!` failure — fails the whole property.
        Fail(String),
        /// `prop_assume!` rejection — the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// An assumption rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Stable tiny hash so every property gets its own (deterministic)
    /// stream even under one global seed.
    fn fnv1a(name: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// Runs `property` for `config.cases` cases, panicking on the first
    /// failure with a reproduction seed.
    pub fn run<F>(name: &str, config: &ProptestConfig, mut property: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let env_seed = env_u64("PROPTEST_SEED", 0xADE1E);
        let base_seed = env_seed ^ fnv1a(name);
        let mut rejects = 0u32;
        let mut case = 0u32;
        while case < config.cases {
            let case_seed = base_seed.wrapping_add(u64::from(case) ^ u64::from(rejects) << 32);
            let mut rng = StdRng::seed_from_u64(case_seed);
            match property(&mut rng) {
                Ok(()) => case += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejects += 1;
                    assert!(
                        rejects <= config.max_global_rejects,
                        "property `{name}`: too many prop_assume! rejections ({rejects}); \
                         last: {why}"
                    );
                }
                Err(TestCaseError::Fail(why)) => {
                    panic!(
                        "property `{name}` failed at case {case}/{} \
                         (reproduce by rerunning this test with PROPTEST_SEED={env_seed} \
                         PROPTEST_CASES={}; internal case seed {case_seed:#x}):\n\
                         {why}",
                        config.cases, config.cases
                    );
                }
            }
        }
    }
}

pub mod prelude {
    //! Everything the `proptest!` style of test needs in scope.

    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "{}\n  both: {:?}",
            format!($($fmt)+),
            left
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Defines property tests: each `fn name(pattern in strategy, ...) { .. }`
/// item becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block)*) => {
        $($crate::__proptest_one! {
            ($config) $(#[$meta])* fn $name($($pat in $strategy),+) $body
        })*
    };
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block)*) => {
        $($crate::__proptest_one! {
            ($crate::test_runner::ProptestConfig::default())
            $(#[$meta])* fn $name($($pat in $strategy),+) $body
        })*
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_one {
    (($config:expr) $(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strategy:expr),+) $body:block) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            $crate::test_runner::run(stringify!($name), &config, |rng| {
                $(let $pat = $crate::strategy::Strategy::sample(&($strategy), rng);)+
                let case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                case()
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3u8..10, b in 0.0f64..1.0, c in 1usize..=4) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn tuples_and_patterns_destructure((x, y) in (0u8..4, 0u8..4)) {
            prop_assert!(x < 4 && y < 4);
        }

        #[test]
        fn flat_map_chains(v in (1usize..5).prop_flat_map(|n| prop::collection::vec(0u8..10, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn hash_sets_hit_target_sizes(s in prop::collection::hash_set((0u8..6, 0u8..6), 2..=4)) {
            prop_assert!(s.len() >= 2 && s.len() <= 4);
        }

        #[test]
        fn just_clones(m in Just(7u32)) {
            prop_assert_eq!(m, 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

        /// Doc comments and explicit configs both parse.
        #[test]
        fn config_override_parses(x in 0u8..2) {
            prop_assert!(x < 2);
            if x == 1 {
                return Ok(());
            }
        }
    }

    #[test]
    fn determinism_same_seed_same_values() {
        use crate::strategy::Strategy;
        use rand::{rngs::StdRng, SeedableRng};
        let strat = (0u32..1000, 0.0f64..1.0);
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }
}
