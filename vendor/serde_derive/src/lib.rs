//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the workspace's
//! vendored serde stand-in.
//!
//! Supports exactly what the repository uses: non-generic structs with
//! named fields, and non-generic enums whose variants are unit-like or
//! carry named fields (the real serde's externally tagged representation:
//! `"Variant"` for unit variants, `{"Variant": {..fields..}}` for struct
//! variants). The parser walks the raw token stream directly (no
//! `syn`/`quote` — the CI container has no registry access), which keeps
//! this crate dependency-free.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`: named-field structs lower to a
/// `Value::Object` with one entry per field in declaration order; enums
/// use the externally tagged representation.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input).map(|item| item.expand_serialize()) {
        Ok(ts) => ts,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Derives `serde::Deserialize`, the inverse of the derived `Serialize`:
/// structs read their fields out of an object (missing fields are
/// errors), enums dispatch on the external tag.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input).map(|item| item.expand_deserialize()) {
        Ok(ts) => ts,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// One enum variant: its name and, for brace variants, its field names.
type Variant = (String, Option<Vec<String>>);

/// A parsed derive target.
enum Item {
    /// A struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// An enum of unit and/or named-field variants (`None` = unit).
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn parse_input(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut iter = tokens.iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Ident(ident) if ident.to_string() == "struct" => {
                let name = match iter.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    _ => return Err("expected a struct name".into()),
                };
                return match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Ok(Item::Struct {
                            name,
                            fields: parse_field_names(g.stream())?,
                        })
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        Err("derive(Serialize/Deserialize): generic types are not \
                             supported by the vendored serde stand-in"
                            .into())
                    }
                    _ => Err("derive(Serialize/Deserialize): only named-field structs \
                              are supported by the vendored serde stand-in"
                        .into()),
                };
            }
            TokenTree::Ident(ident) if ident.to_string() == "enum" => {
                let name = match iter.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    _ => return Err("expected an enum name".into()),
                };
                return match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Ok(Item::Enum {
                            name,
                            variants: parse_variants(g.stream())?,
                        })
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        Err("derive(Serialize/Deserialize): generic types are not \
                             supported by the vendored serde stand-in"
                            .into())
                    }
                    _ => Err("expected an enum body".into()),
                };
            }
            _ => {}
        }
    }
    Err("derive(Serialize/Deserialize): no struct or enum found".into())
}

/// Extracts field names from the contents of a named-fields struct body:
/// for each top-level comma-separated chunk, the name is the identifier
/// immediately before the first `:` (skipping `#[...]` attributes and
/// visibility modifiers).
fn parse_field_names(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut last_ident: Option<String> = None;
    let mut seen_colon_in_chunk = false;
    let mut angle_depth = 0i32;
    for tt in body {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                last_ident = None;
                seen_colon_in_chunk = false;
            }
            TokenTree::Punct(p) if p.as_char() == ':' && !seen_colon_in_chunk => {
                seen_colon_in_chunk = true;
                let name = last_ident.take().ok_or_else(|| {
                    "derive(Serialize/Deserialize): field without a name".to_string()
                })?;
                fields.push(name);
            }
            TokenTree::Ident(ident) if !seen_colon_in_chunk => {
                let text = ident.to_string();
                if text != "pub" {
                    last_ident = Some(text);
                }
            }
            _ => {}
        }
    }
    Ok(fields)
}

/// Extracts `(variant, fields)` pairs from an enum body. `fields` is
/// `None` for unit variants and the named-field list for brace variants;
/// tuple variants are rejected. Attributes (`#[...]`, including doc
/// comments) are skipped; discriminants are not supported.
fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut pending: Option<String> = None;
    let mut tokens = body.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            // Attribute (e.g. a doc comment): `#` followed by `[...]`.
            TokenTree::Punct(p) if p.as_char() == '#' => match tokens.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    tokens.next();
                }
                _ => return Err("stray '#' in enum body".into()),
            },
            TokenTree::Ident(ident) => {
                if let Some(name) = pending.take() {
                    // Two idents in a row: previous one was a unit variant
                    // missing its comma — impossible in valid Rust.
                    return Err(format!("unexpected ident after variant {name}"));
                }
                pending = Some(ident.to_string());
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let name = pending
                    .take()
                    .ok_or_else(|| "variant body without a name".to_string())?;
                variants.push((name, Some(parse_field_names(g.stream())?)));
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(
                    "derive(Serialize/Deserialize): tuple enum variants are not \
                            supported by the vendored serde stand-in"
                        .into(),
                );
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {
                if let Some(name) = pending.take() {
                    variants.push((name, None));
                }
            }
            TokenTree::Punct(p) if p.as_char() == '=' => {
                return Err("derive(Serialize/Deserialize): enum discriminants are not \
                            supported by the vendored serde stand-in"
                    .into());
            }
            _ => {}
        }
    }
    if let Some(name) = pending.take() {
        variants.push((name, None));
    }
    Ok(variants)
}

impl Item {
    fn expand_serialize(&self) -> TokenStream {
        let out = match self {
            Item::Struct { name, fields } => {
                let mut entries = String::new();
                for field in fields {
                    entries.push_str(&format!(
                        "(::std::string::String::from({field:?}), \
                         ::serde::Serialize::to_value(&self.{field})),"
                    ));
                }
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                         fn to_value(&self) -> ::serde::Value {{\n\
                             ::serde::Value::Object(::std::vec![{entries}])\n\
                         }}\n\
                     }}"
                )
            }
            Item::Enum { name, variants } => {
                let mut arms = String::new();
                for (variant, fields) in variants {
                    match fields {
                        None => arms.push_str(&format!(
                            "{name}::{variant} => ::serde::Value::String(\
                             ::std::string::String::from({variant:?})),\n"
                        )),
                        Some(fields) => {
                            let bindings = fields.join(", ");
                            let mut entries = String::new();
                            for field in fields {
                                entries.push_str(&format!(
                                    "(::std::string::String::from({field:?}), \
                                     ::serde::Serialize::to_value({field})),"
                                ));
                            }
                            arms.push_str(&format!(
                                "{name}::{variant} {{ {bindings} }} => \
                                 ::serde::Value::Object(::std::vec![(\
                                     ::std::string::String::from({variant:?}), \
                                     ::serde::Value::Object(::std::vec![{entries}])\
                                 )]),\n"
                            ));
                        }
                    }
                }
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                         fn to_value(&self) -> ::serde::Value {{\n\
                             match self {{\n{arms}\n}}\n\
                         }}\n\
                     }}"
                )
            }
        };
        out.parse().expect("generated Serialize impl parses")
    }

    fn expand_deserialize(&self) -> TokenStream {
        let out = match self {
            Item::Struct { name, fields } => {
                let mut inits = String::new();
                for field in fields {
                    inits.push_str(&format!("{field}: ::serde::field(value, {field:?})?,"));
                }
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_value(value: &::serde::Value) \
                             -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                             ::std::result::Result::Ok(Self {{ {inits} }})\n\
                         }}\n\
                     }}"
                )
            }
            Item::Enum { name, variants } => {
                let mut unit_arms = String::new();
                let mut tagged_arms = String::new();
                for (variant, fields) in variants {
                    match fields {
                        None => unit_arms.push_str(&format!(
                            "{variant:?} => ::std::result::Result::Ok({name}::{variant}),\n"
                        )),
                        Some(fields) => {
                            let mut inits = String::new();
                            for field in fields {
                                inits.push_str(&format!(
                                    "{field}: ::serde::field(body, {field:?})?,"
                                ));
                            }
                            tagged_arms.push_str(&format!(
                                "{variant:?} => ::std::result::Result::Ok(\
                                 {name}::{variant} {{ {inits} }}),\n"
                            ));
                        }
                    }
                }
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_value(value: &::serde::Value) \
                             -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                             match value {{\n\
                                 ::serde::Value::String(tag) => match tag.as_str() {{\n\
                                     {unit_arms}\
                                     other => ::std::result::Result::Err(::serde::DeError(\
                                         ::std::format!(\
                                             \"unknown {name} variant {{other:?}}\"))),\n\
                                 }},\n\
                                 ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                                     let (tag, body) = &entries[0];\n\
                                     match tag.as_str() {{\n\
                                         {tagged_arms}\
                                         other => ::std::result::Result::Err(::serde::DeError(\
                                             ::std::format!(\
                                                 \"unknown {name} variant {{other:?}}\"))),\n\
                                     }}\n\
                                 }},\n\
                                 other => ::std::result::Result::Err(\
                                     ::serde::DeError::expected(\
                                         \"a {name} variant tag\", other)),\n\
                             }}\n\
                         }}\n\
                     }}"
                )
            }
        };
        out.parse().expect("generated Deserialize impl parses")
    }
}
