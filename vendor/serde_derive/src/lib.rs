//! `#[derive(Serialize)]` for the workspace's vendored serde stand-in.
//!
//! Supports exactly what the repository uses: non-generic structs with
//! named fields. The parser walks the raw token stream directly (no
//! `syn`/`quote` — the CI container has no registry access), which keeps
//! this crate dependency-free.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by emitting a `to_value` that builds a
/// `serde::Value::Object` with one entry per named field, in declaration
/// order.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(ts) => ts,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    let mut name = None;
    let mut body = None;
    let mut iter = tokens.iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Ident(ident) if ident.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    _ => return Err("expected a struct name".into()),
                }
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        body = Some(g.stream());
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        return Err("derive(Serialize): generic structs are not supported \
                                    by the vendored serde stand-in"
                            .into());
                    }
                    _ => {
                        return Err("derive(Serialize): only structs with named fields are \
                                    supported by the vendored serde stand-in"
                            .into());
                    }
                }
                break;
            }
            TokenTree::Ident(ident) if ident.to_string() == "enum" => {
                return Err(
                    "derive(Serialize): enums are not supported by the vendored \
                            serde stand-in"
                        .into(),
                );
            }
            _ => {}
        }
    }

    let name = name.ok_or_else(|| "derive(Serialize): no struct found".to_string())?;
    let fields = parse_field_names(body.ok_or_else(|| "no struct body".to_string())?)?;

    let mut entries = String::new();
    for field in &fields {
        entries.push_str(&format!(
            "(::std::string::String::from({field:?}), \
             ::serde::Serialize::to_value(&self.{field})),"
        ));
    }
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{entries}])\n\
             }}\n\
         }}"
    );
    out.parse()
        .map_err(|e| format!("derive(Serialize): generated code failed to parse: {e:?}"))
}

/// Extracts field names from the contents of a named-fields struct body:
/// for each top-level comma-separated chunk, the name is the identifier
/// immediately before the first `:` (skipping `#[...]` attributes and
/// visibility modifiers).
fn parse_field_names(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut last_ident: Option<String> = None;
    let mut seen_colon_in_chunk = false;
    let mut angle_depth = 0i32;
    for tt in body {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                last_ident = None;
                seen_colon_in_chunk = false;
            }
            TokenTree::Punct(p) if p.as_char() == ':' && !seen_colon_in_chunk => {
                seen_colon_in_chunk = true;
                let name = last_ident
                    .take()
                    .ok_or_else(|| "derive(Serialize): field without a name".to_string())?;
                fields.push(name);
            }
            TokenTree::Ident(ident) if !seen_colon_in_chunk => {
                let text = ident.to_string();
                if text != "pub" {
                    last_ident = Some(text);
                }
            }
            _ => {}
        }
    }
    Ok(fields)
}
