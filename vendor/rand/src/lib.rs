//! Workspace-vendored, dependency-free stand-in for the subset of the
//! `rand` 0.8 API this repository uses.
//!
//! The CI container has no access to a crates registry, so the workspace
//! vendors the few third-party crates it needs. This one provides:
//!
//! * [`RngCore`] — the object-safe raw-generator trait (`&mut dyn RngCore`
//!   is used throughout the traffic and AMOSA crates),
//! * [`Rng`] — the ergonomic extension trait (`gen_range`, `gen_bool`),
//!   blanket-implemented for every `RngCore` including trait objects,
//! * [`SeedableRng`] with `seed_from_u64`,
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator.
//!
//! Determinism is part of the contract: the same seed always produces the
//! same stream, on every platform, forever. The simulator's reproducibility
//! tests rely on this.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a raw source of `u32`/`u64`.
///
/// Object safe, so generators can be passed as `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A uniform double in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ergonomic sampling methods, available on every [`RngCore`] (including
/// `dyn RngCore`).
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        if p >= 1.0 {
            return true;
        }
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A type uniformly sampleable from a bounded range (mirrors the shape of
/// `rand::distributions::uniform::SampleUniform`, so type inference
/// behaves like the real crate's).
pub trait SampleUniform: PartialOrd + Sized {
    /// Draws uniformly from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(
            self.start() <= self.end(),
            "gen_range: empty inclusive range"
        );
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128 - low as i128) as u128 + u128::from(inclusive);
                let draw = widening_reduce(rng.next_u64(), span);
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Maps a raw `u64` onto `[0, span)` with the widening-multiply trick
/// (Lemire), which is unbiased enough for simulation purposes and, unlike
/// rejection sampling, always consumes exactly one draw — keeping streams
/// aligned for reproducibility.
fn widening_reduce(raw: u64, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span > u64::MAX as u128 {
        // Only reachable for full-width i/u64 ranges; modulo is exact there.
        return raw as u128 % span;
    }
    (raw as u128 * span) >> 64
}

macro_rules! float_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let unit = unit_f64(rng) as $t;
                let value = low + (high - low) * unit;
                // Casting the unit to f32 (or the final rounding step) can
                // land exactly on `high`; keep exclusive ranges exclusive.
                if !inclusive && value >= high && low < high {
                    return low;
                }
                value
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// A generator constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded through SplitMix64
    /// exactly like `rand` 0.8 does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dest, byte) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dest = byte;
            }
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the ChaCha12 generator of the real `rand` crate, but it honours
    /// the same contract this workspace needs: seeded, fast, and with a
    /// platform-independent stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (lane, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                *lane = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias kept for API compatibility with `rand::rngs::SmallRng`.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u16 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u16 = rng.gen_range(3..=17);
            assert!((3..=17).contains(&w));
            let f: f64 = rng.gen_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&f));
            let i: i32 = rng.gen_range(-10..=-5);
            assert!((-10..=-5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_edge_cases_and_rate() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..40_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 40_000.0;
        assert!((rate - 0.25).abs() < 0.02, "measured {rate}");
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(13);
        let dynamic: &mut dyn RngCore = &mut rng;
        let v = dynamic.gen_range(0..10usize);
        assert!(v < 10);
        let _ = dynamic.gen_bool(0.5);
    }
}
