//! Workspace-vendored, dependency-free benchmark harness exposing the
//! subset of the `criterion` API this repository's five bench targets use.
//!
//! It is a *timing* harness, not a *statistics* harness: each benchmark is
//! warmed up briefly, then timed over enough iterations to fill the
//! configured measurement window, and the mean time per iteration is
//! printed. There are no HTML reports, outlier analyses, or comparisons —
//! but the `criterion_group!` / `criterion_main!` surface is identical, so
//! swapping the real crate in (when a registry is available) is a
//! manifest-only change.
//!
//! Under `cargo test` (the target is compiled with `--test`-style args or
//! run by the libtest-less `harness = false` protocol) each benchmark body
//! executes exactly once, so bench targets double as smoke tests without
//! blowing up CI time.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, one per bench target.
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes the target with `--bench`; `cargo test`
        // invokes it with no arguments. Only measure for real under
        // `cargo bench` — anything else (including CRITERION_SMOKE=1) runs
        // every benchmark body exactly once as a smoke test.
        let smoke = !std::env::args().any(|a| a == "--bench")
            || std::env::var("CRITERION_SMOKE")
                .map(|v| v == "1")
                .unwrap_or(false);
        Criterion { smoke }
    }
}

impl Criterion {
    /// Compatibility shim: the real criterion parses CLI filters here.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            measurement: Duration::from_secs(1),
            warm_up: Duration::from_millis(300),
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let smoke = self.smoke;
        run_benchmark(
            &id.into(),
            f,
            Duration::from_millis(300),
            Duration::from_secs(1),
            smoke,
        );
        self
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    measurement: Duration,
    warm_up: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the measurement window.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement = duration;
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up = duration;
        self
    }

    /// Compatibility shim: sample count is implied by the windows here.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(
            &label,
            f,
            self.warm_up,
            self.measurement,
            self.criterion.smoke,
        );
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(
            &label,
            |b| f(b, input),
            self.warm_up,
            self.measurement,
            self.criterion.smoke,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A two-part benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter display.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
/// Only a hint in this harness.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: one per batch.
    LargeInput,
    /// Explicit batch count.
    NumBatches(u64),
    /// One input per iteration.
    PerIteration,
}

/// Passed to every benchmark closure; runs and times the measured routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn run_benchmark<F>(label: &str, mut f: F, warm_up: Duration, measurement: Duration, smoke: bool)
where
    F: FnMut(&mut Bencher),
{
    if smoke {
        let mut bencher = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        println!("bench {label:<40} ... smoke ok");
        return;
    }

    // Calibrate: run single iterations until the warm-up window is spent,
    // deriving the per-iteration cost.
    let mut bencher = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut calibration_runs = 0u64;
    while warm_start.elapsed() < warm_up || calibration_runs == 0 {
        f(&mut bencher);
        calibration_runs += 1;
        if calibration_runs >= 1_000_000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed() / calibration_runs.max(1) as u32;

    // Measure: size one timed sample to fill the measurement window.
    let iterations = if per_iter.is_zero() {
        1_000_000
    } else {
        (measurement.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 50_000_000) as u64
    };
    let mut bencher = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean_ns = bencher.elapsed.as_nanos() as f64 / iterations.max(1) as f64;
    println!("bench {label:<40} ... {mean_ns:>14.2} ns/iter ({iterations} iters)");
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($function(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` probes harness = false targets with `--list`;
            // answer the protocol without running benchmarks.
            if ::std::env::args().any(|a| a == "--list") {
                println!("0 tests, 0 benchmarks");
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_smoke_runs_once() {
        let mut criterion = Criterion { smoke: true };
        let mut runs = 0u64;
        criterion.bench_function("counter", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut criterion = Criterion { smoke: true };
        let mut group = criterion.benchmark_group("g");
        group.measurement_time(Duration::from_millis(10));
        group.warm_up_time(Duration::from_millis(5));
        group.sample_size(10);
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::new("f", "param"), &3u64, |b, &x| {
            b.iter_batched(|| x, |v| total += v, BatchSize::LargeInput)
        });
        group.finish();
        assert_eq!(total, 3);
    }
}
