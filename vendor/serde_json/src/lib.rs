//! Workspace-vendored minimal JSON writer over the vendored `serde`
//! [`Value`] tree. Only the encoding direction is implemented — the
//! repository dumps result JSON for figures, it never parses any.

#![forbid(unsafe_code)]

use serde::{Serialize, Value};
use std::fmt;

/// Encoding error. The value-tree design makes encoding infallible, but
/// the public API keeps the `Result` shape of the real `serde_json`.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON encoding error")
    }
}

impl std::error::Error for Error {}

/// Serialises `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Match serde_json: integral floats keep a trailing `.0`.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, v, d| {
                write_value(o, v, indent, d)
            })
        }
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            indent,
            depth,
            ('{', '}'),
            |o, (k, v), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, v, indent, d);
            },
        ),
    }
}

fn write_seq<I, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, usize),
{
    out.push(brackets.0);
    if items.len() == 0 {
        out.push(brackets.1);
        return;
    }
    let mut first = true;
    for item in items {
        if !first {
            out.push(',');
        }
        first = false;
        newline_indent(out, indent, depth + 1);
        write_item(out, item, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push(brackets.1);
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_round_out() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(3)),
            (
                "b".into(),
                Value::Array(vec![Value::Float(1.5), Value::Null]),
            ),
            ("c".into(), Value::String("x\"y".into())),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":3,"b":[1.5,null],"c":"x\"y"}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 3"));
    }

    #[test]
    fn floats_match_serde_json_shape() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.25f64).unwrap(), "2.25");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
