//! Workspace-vendored minimal JSON codec over the vendored `serde`
//! [`Value`] tree: [`to_string`]/[`to_string_pretty`] for encoding and
//! [`from_str`] (a small recursive-descent parser) for decoding — enough
//! for the repository's result dumps and checked-in scenario spec files.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Codec error: a message naming what failed (and where, for parsing).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serialises `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type (parse to a [`Value`]
/// tree, then lift).
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(T::from_value(&value)?)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> Error {
        Error(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&byte) = rest.first() else {
                return Err(self.error("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            // Surrogates are not paired (the writer never
                            // emits them); reject instead of mis-decoding.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.error("non-scalar \\u escape"))?;
                            self.pos += 4;
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (JSON strings are UTF-8).
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number {text:?} at byte {start}")))
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Match serde_json: integral floats keep a trailing `.0`.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, v, d| {
                write_value(o, v, indent, d)
            })
        }
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            indent,
            depth,
            ('{', '}'),
            |o, (k, v), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, v, indent, d);
            },
        ),
    }
}

fn write_seq<I, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, usize),
{
    out.push(brackets.0);
    if items.len() == 0 {
        out.push(brackets.1);
        return;
    }
    let mut first = true;
    for item in items {
        if !first {
            out.push(',');
        }
        first = false;
        newline_indent(out, indent, depth + 1);
        write_item(out, item, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push(brackets.1);
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_round_out() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(3)),
            (
                "b".into(),
                Value::Array(vec![Value::Float(1.5), Value::Null]),
            ),
            ("c".into(), Value::String("x\"y".into())),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":3,"b":[1.5,null],"c":"x\"y"}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 3"));
    }

    #[test]
    fn floats_match_serde_json_shape() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.25f64).unwrap(), "2.25");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn parser_round_trips_the_writer() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(3)),
            ("neg".into(), Value::Int(-17)),
            (
                "b".into(),
                Value::Array(vec![Value::Float(1.5), Value::Null, Value::Bool(true)]),
            ),
            ("c".into(), Value::String("x\"y\n\\ ünïcode".into())),
            ("empty_arr".into(), Value::Array(vec![])),
            ("empty_obj".into(), Value::Object(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let parsed: Value = from_str(&text).unwrap();
            assert_eq!(parsed, v);
        }
    }

    #[test]
    fn parser_decodes_typed_values() {
        let pairs: Vec<(u32, String)> = from_str(r#"[[1, "one"], [2, "two"]]"#).unwrap();
        assert_eq!(pairs, vec![(1, "one".into()), (2, "two".into())]);
        let opt: Option<f64> = from_str("null").unwrap();
        assert_eq!(opt, None);
        let sci: f64 = from_str("2.5e3").unwrap();
        assert_eq!(sci, 2500.0);
        let escaped: String = from_str(r#""tab\tnew\nlineA""#).unwrap();
        assert_eq!(escaped, "tab\tnew\nlineA");
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("{\"a\" 1}").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<u32>("-4").is_err(), "negative into unsigned");
        assert!(from_str::<bool>("7").is_err(), "type mismatch surfaces");
    }
}
