#!/usr/bin/env bash
# Kill-and-resume smoke: SIGKILL `run_specs` mid-sweep, then `--resume`,
# and assert that (a) only the ledger-incomplete points re-ran and
# (b) the merged results/specs.json is byte-identical to an
# uninterrupted run. This is the crash-safety contract end to end, at
# the process level — the in-process variant lives in tests/chaos.rs.
#
# Environment:
#   BIN   — run_specs binary (default target/release/run_specs;
#           built on demand when absent)
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${BIN:-target/release/run_specs}
export ADELE_QUICK=1
TOTAL=5 # points in the checked-in specs/ suite
LEDGER=results/specs.ledger.jsonl
TRACE=$(mktemp /tmp/resume_trace.XXXXXX.jsonl)
REF=$(mktemp /tmp/specs_reference.XXXXXX.json)
trap 'rm -f "$TRACE" "$REF"' EXIT

if [ ! -x "$BIN" ]; then
    cargo build --release -p adele_bench --bin run_specs
fi

echo "== reference pass (uninterrupted) =="
env -u NOC_CHAOS "$BIN" specs >/dev/null
cp results/specs.json "$REF"

echo "== victim pass (sequential, chaos-delayed, killed mid-sweep) =="
rm -f "$LEDGER" results/specs.json
# One worker and a per-point delay stretch the sweep so the kill window
# is easy to hit; the delay only burns wall clock, never changes numbers.
NOC_THREADS=1 NOC_CHAOS="seed=1,delay=1.0,delay_ms=400" "$BIN" specs >/dev/null 2>&1 &
victim=$!
for _ in $(seq 1 100); do
    done_lines=$(grep -c '"hash"' "$LEDGER" 2>/dev/null || true)
    if [ "${done_lines:-0}" -ge 2 ]; then
        break
    fi
    sleep 0.1
done
kill -9 "$victim" 2>/dev/null || {
    echo "FAIL: sweep finished before the kill landed (machine too fast?)" >&2
    exit 1
}
wait "$victim" 2>/dev/null || true
echo "killed run_specs (pid $victim) with $(grep -c '"hash"' "$LEDGER") point(s) sealed"

echo "== resume pass =="
resume_err=$(mktemp /tmp/resume_err.XXXXXX)
env -u NOC_CHAOS "$BIN" specs --resume --trace "$TRACE" 2>"$resume_err" >/dev/null
sealed=$(sed -n 's/^resuming: \([0-9]*\) completed point(s).*/\1/p' "$resume_err")
rm -f "$resume_err"
if [ -z "$sealed" ] || [ "$sealed" -lt 1 ] || [ "$sealed" -ge "$TOTAL" ]; then
    echo "FAIL: expected a partially-complete ledger, found ${sealed:-0}/$TOTAL sealed" >&2
    exit 1
fi

cached=$(grep -c '"status":"cached"' "$TRACE" || true)
started=$(grep -c '"status":"started"' "$TRACE" || true)
if [ "$cached" -ne "$sealed" ]; then
    echo "FAIL: $sealed sealed point(s) but $cached restored from the ledger" >&2
    exit 1
fi
if [ "$started" -ne $((TOTAL - sealed)) ]; then
    echo "FAIL: expected $((TOTAL - sealed)) novel point(s) to run, saw $started" >&2
    exit 1
fi
echo "resume re-ran $started novel point(s), restored $cached from the ledger"

if ! cmp -s "$REF" results/specs.json; then
    echo "FAIL: merged results/specs.json differs from the uninterrupted run" >&2
    exit 1
fi
echo "OK: merged results byte-identical to the uninterrupted run"
