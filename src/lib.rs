//! Umbrella crate for the AdEle reproduction workspace.
//!
//! This package exists to anchor the workspace-level integration tests
//! (`tests/`) and the runnable examples (`examples/`); the library itself
//! is a thin facade re-exporting the seven member crates so downstream
//! experiments can depend on a single name:
//!
//! | Re-export | Crate | Role |
//! |---|---|---|
//! | [`topology`] | `noc_topology` | 3D mesh, elevator columns, Elevator-First routing geometry |
//! | [`traffic`] | `noc_traffic` | synthetic patterns, injection processes, app models, `f_ij` matrices |
//! | [`amosa`] | `amosa` | archived multi-objective simulated annealing |
//! | [`core`] | `adele` | offline subset search + online selection policies |
//! | [`area`] | `noc_area` | 45 nm analytical router-area model (Table III) |
//! | [`sim`] | `noc_sim` | cycle-level wormhole simulator + sweep harness |
//! | [`bench`] | `adele_bench` | shared harness for the `fig*`/`table*` binaries |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use adele as core;
pub use adele_bench as bench;
pub use amosa;
pub use noc_area as area;
pub use noc_sim as sim;
pub use noc_topology as topology;
pub use noc_traffic as traffic;
